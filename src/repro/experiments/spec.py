"""Declarative scenario specification and the named scenario/site registries.

A :class:`ScenarioSpec` is the single description of *which world* an
experiment runs in: the master seed, the simulated horizon, the facility
hardware, the site climate, the grid parameters and the workload shape.  It
is a frozen (hashable) dataclass, so an :class:`~repro.experiments.session.
ExperimentSession` can use the spec itself as the cache key for the expensive
substrates built from it.

Two small registries make specs addressable by name:

* the **site registry** (:func:`get_site` / :func:`site_names`) maps short
  names to :class:`~repro.config.SiteConfig` descriptions (the CLI's
  ``--site`` flag);
* the **scenario registry** (:func:`register_scenario` / :func:`get_scenario`
  / :func:`list_scenarios`) maps names to full specs (the CLI's
  ``--scenario`` flag), pre-populated with the paper's worlds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..config import (
    FacilityConfig,
    SiteConfig,
    config_replace,
    config_to_jsonable,
)
from ..errors import ConfigurationError
from ..grid.fuel_mix import FuelMixConfig
from ..grid.pricing import LmpPriceConfig
from ..timeutils import SimulationCalendar
from ..workloads.supercloud import SuperCloudTraceConfig

__all__ = [
    "WorkloadSpec",
    "GridSpec",
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "register_site",
    "get_site",
    "site_names",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Workload-shape knobs of a scenario (the SuperCloud-like trace).

    Attributes
    ----------
    gpu_model:
        GPU model installed in the cluster (see :mod:`repro.telemetry.gpu_power`).
    mean_busy_utilization:
        Average compute utilization of a busy GPU.
    packing_factor:
        How well busy GPUs pack onto nodes (1 = perfectly packed).
    """

    gpu_model: str = "V100"
    mean_busy_utilization: float = 0.72
    packing_factor: float = 0.7


@dataclass(frozen=True)
class GridSpec:
    """Grid-parameter overrides of a scenario (``None`` = model defaults)."""

    fuel: Optional[FuelMixConfig] = None
    price: Optional[LmpPriceConfig] = None


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to (re)build one simulated world, declaratively.

    Attributes
    ----------
    name:
        Registry name / report label.
    seed:
        Master random seed from which every substrate stream is derived.
    start_year / n_months:
        Simulated horizon (the paper's window is 2020-2021, 24 months).
    site:
        Site climate and location.
    facility:
        Facility hardware description.
    workload:
        Workload-shape knobs.
    grid:
        Grid-parameter overrides.
    description:
        One-line human description shown by registry listings.
    """

    name: str = "default"
    seed: int = 0
    start_year: int = 2020
    n_months: int = 24
    site: SiteConfig = SiteConfig()
    facility: FacilityConfig = FacilityConfig()
    workload: WorkloadSpec = WorkloadSpec()
    grid: GridSpec = GridSpec()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.n_months <= 0:
            raise ConfigurationError(f"n_months must be positive, got {self.n_months!r}")

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------
    def calendar(self) -> SimulationCalendar:
        """The simulation calendar this spec describes."""
        return SimulationCalendar(start_year=self.start_year, n_months=self.n_months)

    def trace_config(self) -> SuperCloudTraceConfig:
        """The facility-load trace configuration implied by the spec."""
        return SuperCloudTraceConfig(
            facility=self.facility,
            gpu_model=self.workload.gpu_model,
            mean_busy_utilization=self.workload.mean_busy_utilization,
            packing_factor=self.workload.packing_factor,
        )

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """A copy of the spec with ``changes`` applied (unknown fields raise)."""
        return config_replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """Deep, JSON-ready dictionary form of the spec."""
        return config_to_jsonable(self)


# ---------------------------------------------------------------------------
# Site registry
# ---------------------------------------------------------------------------

_SITES: dict[str, SiteConfig] = {}


def register_site(site: SiteConfig, *, overwrite: bool = False) -> SiteConfig:
    """Register a site under its own ``name`` so the CLI can select it."""
    if site.name in _SITES and not overwrite:
        raise ConfigurationError(f"site {site.name!r} is already registered")
    _SITES[site.name] = site
    return site


def get_site(name: str) -> SiteConfig:
    """Look up a registered site by name."""
    try:
        return _SITES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown site {name!r}; registered sites: {sorted(_SITES)}"
        ) from None


def site_names() -> tuple[str, ...]:
    """Names of all registered sites, in registration order."""
    return tuple(_SITES)


register_site(SiteConfig())  # holyoke-ma, the paper's site
register_site(
    SiteConfig(
        name="phoenix-az",
        mean_annual_temperature_c=23.9,
        seasonal_temperature_amplitude_c=10.5,
        diurnal_temperature_amplitude_c=7.0,
        latitude_deg=33.4,
        grid_region="AZPS",
    )
)
register_site(
    SiteConfig(
        name="reykjavik-is",
        mean_annual_temperature_c=4.5,
        seasonal_temperature_amplitude_c=5.5,
        diurnal_temperature_amplitude_c=2.0,
        latitude_deg=64.1,
        grid_region="IS",
    )
)
# The continental ladder: eight more North-American sites, one per grid
# region, so 10-site fleets span genuinely different climate/carbon/price
# substrates (regional grid profiles live in repro.fleet.spec.REGION_GRIDS).
register_site(
    SiteConfig(
        name="columbia-wa",
        mean_annual_temperature_c=11.5,
        seasonal_temperature_amplitude_c=10.0,
        diurnal_temperature_amplitude_c=6.5,
        latitude_deg=46.2,
        grid_region="BPA",
    )
)
register_site(
    SiteConfig(
        name="dallas-tx",
        mean_annual_temperature_c=18.8,
        seasonal_temperature_amplitude_c=11.0,
        diurnal_temperature_amplitude_c=5.5,
        latitude_deg=32.8,
        grid_region="ERCO",
    )
)
register_site(
    SiteConfig(
        name="denver-co",
        mean_annual_temperature_c=10.1,
        seasonal_temperature_amplitude_c=11.5,
        diurnal_temperature_amplitude_c=7.5,
        latitude_deg=39.7,
        grid_region="PSCO",
    )
)
register_site(
    SiteConfig(
        name="atlanta-ga",
        mean_annual_temperature_c=17.0,
        seasonal_temperature_amplitude_c=9.5,
        diurnal_temperature_amplitude_c=5.0,
        latitude_deg=33.7,
        grid_region="SOCO",
    )
)
register_site(
    SiteConfig(
        name="sanjose-ca",
        mean_annual_temperature_c=15.3,
        seasonal_temperature_amplitude_c=5.0,
        diurnal_temperature_amplitude_c=6.0,
        latitude_deg=37.3,
        grid_region="CISO",
    )
)
register_site(
    SiteConfig(
        name="chicago-il",
        mean_annual_temperature_c=9.9,
        seasonal_temperature_amplitude_c=13.0,
        diurnal_temperature_amplitude_c=4.5,
        latitude_deg=41.9,
        grid_region="MISO",
    )
)
register_site(
    SiteConfig(
        name="ashburn-va",
        mean_annual_temperature_c=13.4,
        seasonal_temperature_amplitude_c=11.0,
        diurnal_temperature_amplitude_c=5.0,
        latitude_deg=39.0,
        grid_region="PJM",
    )
)
register_site(
    SiteConfig(
        name="quebec-qc",
        mean_annual_temperature_c=4.2,
        seasonal_temperature_amplitude_c=14.5,
        diurnal_temperature_amplitude_c=4.0,
        latitude_deg=46.8,
        grid_region="HQ",
    )
)


# ---------------------------------------------------------------------------
# Scenario registry
# ---------------------------------------------------------------------------

_SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, *, overwrite: bool = False) -> ScenarioSpec:
    """Register ``spec`` under ``spec.name``; returns the spec for chaining."""
    if spec.name in _SCENARIOS and not overwrite:
        raise ConfigurationError(f"scenario {spec.name!r} is already registered")
    _SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered scenarios: {sorted(_SCENARIOS)}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Names of all registered scenarios, in registration order."""
    return tuple(_SCENARIOS)


def list_scenarios() -> Iterator[ScenarioSpec]:
    """Iterate over the registered scenario specs, in registration order."""
    return iter(tuple(_SCENARIOS.values()))


register_scenario(
    ScenarioSpec(description="the paper's 2020-2021 SuperCloud-like world (seed 0)")
)
register_scenario(
    ScenarioSpec(
        name="paper",
        seed=20220527,
        description="same world, seeded with the paper's submission date",
    )
)
register_scenario(
    ScenarioSpec(
        name="single-year",
        n_months=12,
        description="one simulated year (too short for the Fig. 5 analysis)",
    )
)
register_scenario(
    ScenarioSpec(
        name="hot-climate",
        site=get_site("phoenix-az"),
        description="the same facility relocated to a hot desert climate",
    )
)
register_scenario(
    ScenarioSpec(
        name="a100-refresh",
        workload=WorkloadSpec(gpu_model="A100"),
        description="the facility after an A100 hardware refresh",
    )
)
register_scenario(
    ScenarioSpec(
        name="supercloud-small",
        facility=FacilityConfig(name="supercloud-small", n_nodes=16, gpus_per_node=4),
        description=(
            "a 16-node x 4-GPU slice of the facility (the small benchmark tier; "
            "also the seeded world of the policy-composition parity tests)"
        ),
    )
)
register_scenario(
    ScenarioSpec(
        name="supercloud-medium",
        facility=FacilityConfig(name="supercloud-medium", n_nodes=64, gpus_per_node=4),
        description=(
            "a 64-node x 4-GPU build of the facility (the medium benchmark tier; "
            "also the seeded world of the policy-composition parity tests)"
        ),
    )
)
register_scenario(
    ScenarioSpec(
        name="supercloud-large",
        facility=FacilityConfig(name="supercloud-large", n_nodes=256, gpus_per_node=8),
        workload=WorkloadSpec(gpu_model="A100"),
        description=(
            "a 256-node x 8-GPU A100 build-out of the facility "
            "(the scale tier exercised by benchmarks/test_bench_simulator_scale.py)"
        ),
    )
)
register_scenario(
    ScenarioSpec(
        name="supercloud-xlarge",
        facility=FacilityConfig(name="supercloud-xlarge", n_nodes=1024, gpus_per_node=8),
        workload=WorkloadSpec(gpu_model="A100"),
        description=(
            "a 1024-node x 8-GPU A100 build-out (8192 GPUs — the top rung of the "
            "scale ladder, sized for parallel-fleet and single-site scale benchmarks)"
        ),
    )
)
