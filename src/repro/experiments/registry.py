"""The experiment registry.

Every paper analysis is registered here as an :class:`ExperimentDefinition`:
a runner callable ``(session, **params) -> ExperimentResult`` plus declared,
typed parameters.  The registry is the single source the CLI generates its
subcommands from, so registering a new experiment automatically gives it a
``greenhpc <name>`` surface with ``--seed/--months/--site/--json`` handling
and per-parameter flags — no CLI edits required.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, TYPE_CHECKING

from ..errors import ConfigurationError
from ..obs.profile import RunProfile
from ..obs.recorder import get_recorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .result import ExperimentResult
    from .session import ExperimentSession

__all__ = [
    "ExperimentParam",
    "ExperimentDefinition",
    "experiment",
    "register_experiment",
    "get_experiment",
    "experiment_names",
    "list_experiments",
]


@dataclass(frozen=True)
class ExperimentParam:
    """One declared, typed parameter of an experiment.

    Attributes
    ----------
    name:
        Python-identifier parameter name (also the argparse dest).
    type:
        Callable coercing a CLI string to the parameter's type.
    default:
        Value used when the parameter is not supplied.
    help:
        One-line description for ``--help``.
    choices:
        Optional closed set of allowed values.
    """

    name: str
    type: Callable[[str], Any]
    default: Any
    help: str = ""
    choices: Optional[tuple[Any, ...]] = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ConfigurationError(f"parameter name must be an identifier, got {self.name!r}")

    @property
    def cli_flag(self) -> str:
        """The generated command-line flag (underscores become dashes)."""
        return "--" + self.name.replace("_", "-")

    def validate(self, value: Any) -> Any:
        """Check ``value`` against ``choices`` (returns it for chaining)."""
        if self.choices is not None and value not in self.choices:
            raise ConfigurationError(
                f"parameter {self.name!r} must be one of {list(self.choices)}, got {value!r}"
            )
        return value


@dataclass(frozen=True)
class ExperimentDefinition:
    """A registered experiment: runner + metadata + declared parameters."""

    name: str
    runner: Callable[..., "ExperimentResult"]
    help: str = ""
    params: tuple[ExperimentParam, ...] = ()
    min_months: int = 1

    def resolve_params(self, **overrides: Any) -> dict[str, Any]:
        """Merge ``overrides`` over declared defaults, rejecting unknown names."""
        declared = {p.name: p for p in self.params}
        unknown = set(overrides) - set(declared)
        if unknown:
            raise ConfigurationError(
                f"unknown parameter(s) {sorted(unknown)} for experiment {self.name!r}; "
                f"declared: {sorted(declared)}"
            )
        resolved = {name: param.default for name, param in declared.items()}
        for name, value in overrides.items():
            resolved[name] = declared[name].validate(value)
        return resolved

    def run(self, session: "ExperimentSession", **overrides: Any) -> "ExperimentResult":
        """Run the experiment on ``session`` with resolved parameters.

        Every run is wrapped in an ``experiment.<name>`` span.  When tracing
        is enabled, the spans recorded during the run are condensed into a
        :class:`~repro.obs.profile.RunProfile` and attached to the returned
        result; with tracing off the result is bit-identical to an untraced
        build (``profile=None``, no clocks read).
        """
        if session.spec.n_months < self.min_months:
            raise ConfigurationError(
                f"experiment {self.name!r} needs a horizon of at least "
                f"{self.min_months} months, got {session.spec.n_months}"
            )
        recorder = get_recorder()
        if not recorder.enabled:
            return self.runner(session, **self.resolve_params(**overrides))
        mark = recorder.mark()
        with recorder.span(
            "experiment.run", experiment=self.name, scenario=session.spec.name
        ) as run_span:
            result = self.runner(session, **self.resolve_params(**overrides))
        profile = RunProfile.from_spans(
            recorder.spans_since(mark),
            total_s=run_span.record.wall_s,
            metrics=recorder.metrics.snapshot(),
        )
        return dataclasses.replace(result, profile=profile)


_EXPERIMENTS: dict[str, ExperimentDefinition] = {}


def register_experiment(definition: ExperimentDefinition, *, overwrite: bool = False) -> ExperimentDefinition:
    """Register ``definition`` under its name; returns it for chaining."""
    if definition.name in _EXPERIMENTS and not overwrite:
        raise ConfigurationError(f"experiment {definition.name!r} is already registered")
    _EXPERIMENTS[definition.name] = definition
    return definition


def experiment(
    name: str,
    *,
    help: str = "",
    params: tuple[ExperimentParam, ...] = (),
    min_months: int = 1,
) -> Callable[[Callable[..., "ExperimentResult"]], Callable[..., "ExperimentResult"]]:
    """Decorator registering a runner as the experiment ``name``."""

    def decorate(runner: Callable[..., "ExperimentResult"]) -> Callable[..., "ExperimentResult"]:
        register_experiment(
            ExperimentDefinition(
                name=name, runner=runner, help=help, params=tuple(params), min_months=min_months
            )
        )
        return runner

    return decorate


def get_experiment(name: str) -> ExperimentDefinition:
    """Look up a registered experiment by name."""
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; registered experiments: {sorted(_EXPERIMENTS)}"
        ) from None


def experiment_names() -> tuple[str, ...]:
    """Names of all registered experiments, in registration order."""
    return tuple(_EXPERIMENTS)


def list_experiments() -> Iterator[ExperimentDefinition]:
    """Iterate over the registered experiments, in registration order."""
    return iter(tuple(_EXPERIMENTS.values()))
