"""Campaign DAGs: staged, content-addressed, incrementally re-executed.

A :class:`CampaignDAG` expresses one campaign as a small rule graph over an
:class:`~repro.artifacts.ArtifactStore`, in the Snakemake shape of cached
stages keyed by their inputs:

* **run** — one node per :class:`~repro.experiments.campaign.CampaignPoint`,
  addressed by :func:`~repro.artifacts.keys.run_key` (scenario spec ×
  experiment × params × derived seed × code version).  Executed through
  :func:`~repro.experiments.campaign.run_campaign`'s store path, so hits
  skip the simulator entirely.
* **summarize** — per-dimension aggregate tables over the run rows; its key
  hashes the ordered *run keys*.
* **compare** — per-metric comparison grids across every swept dimension
  (policies, routers, sites, seeds, ...); keyed by the summarize key.
* **report** — the rendered figure battery (markdown + embedded-SVG HTML,
  stdlib only, see :mod:`repro.experiments.report`); keyed by the compare
  key and the formats.

Because each derived key hashes its upstream keys, editing one grid value
re-keys exactly one run node and the three derived nodes — a
re-materialization simulates that single point and re-renders, leaving
every other run artifact untouched.  An unchanged campaign materializes
with **zero** simulator executions.

>>> from repro.artifacts import ArtifactStore
>>> from repro.experiments import CampaignSpec
>>> from repro.experiments.dag import CampaignDAG
>>> import tempfile
>>> campaign = CampaignSpec(experiments=("table1",), scenario_grid={"seed": [0, 1]})
>>> dag = CampaignDAG(campaign, ArtifactStore(tempfile.mkdtemp()))
>>> [node.stage for node in dag.nodes()]
['run', 'run', 'summarize', 'compare', 'report']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from ..artifacts.keys import code_version, derived_key, run_key
from ..artifacts.store import ArtifactStore
from ..config import config_to_jsonable
from ..errors import ArtifactError
from ..obs.recorder import get_recorder
from ..parallel.pool import ParallelConfig
from .campaign import CampaignResult, CampaignSpec, run_campaign
from .report import render_html, render_markdown

__all__ = [
    "CampaignDAG",
    "DagNode",
    "DagOutcome",
    "summarize_payload",
    "compare_payload",
]

#: The report formats a DAG renders, in payload-key order.
REPORT_FORMATS = ("markdown", "html")


@dataclass(frozen=True)
class DagNode:
    """One addressable node of a campaign DAG."""

    stage: str
    key: str
    label: str
    upstream: tuple[str, ...] = ()


@dataclass(frozen=True)
class DagOutcome:
    """Everything a materialized campaign DAG produced.

    ``stage_status`` records, per stage, whether it was served from the
    store (``"cached"``) or recomputed (``"computed"``); the run stage
    reports its hit/simulated split.
    """

    result: CampaignResult
    summary: Mapping[str, Any]
    comparison: Mapping[str, Any]
    report_markdown: str
    report_html: str
    stage_status: Mapping[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON-ready status view (rows and reports stay separate)."""
        return {
            "n_points": len(self.result),
            "cache_hits": self.result.cache_hits,
            "cache_misses": self.result.cache_misses,
            "stage_status": dict(self.stage_status),
            "metrics": list(self.comparison.get("metrics", [])),
            "dimensions": list(self.comparison.get("dimensions", [])),
        }


def summarize_payload(result: CampaignResult) -> dict[str, Any]:
    """The summarize-stage artifact: rows plus per-dimension aggregates."""
    campaign = result.campaign
    dimensions = list(campaign.scenario_grid) + list(campaign.param_grid)
    return {
        "experiments": list(campaign.experiments),
        "dimensions": dimensions,
        "n_points": len(result),
        "rows": config_to_jsonable(result.rows),
        "overall": config_to_jsonable(result.summarize("experiment")),
        "by_dimension": {
            dimension: config_to_jsonable(result.summarize("experiment", dimension))
            for dimension in dimensions
        },
    }


def _metric_names(records: Sequence[Mapping[str, Any]]) -> list[str]:
    """Base metric names aggregated in summarize records, in first-seen order."""
    metrics: list[str] = []
    for record in records:
        for column in record:
            if column.endswith("_mean"):
                base = column[: -len("_mean")]
                if base not in metrics:
                    metrics.append(base)
    return metrics


def compare_payload(summary: Mapping[str, Any]) -> dict[str, Any]:
    """The compare-stage artifact: per-metric grids across every dimension.

    Derived purely from the summarize payload (never from live results), so
    the stage is re-runnable from the store alone.  ``experiment`` is
    always present as an implicit comparison dimension; each swept grid
    dimension adds a grid whose entries carry the experiment, the dimension
    value's label and the metric's mean/min/max over the matching points.
    """
    overall = list(summary.get("overall", []))
    by_dimension = dict(summary.get("by_dimension", {}))
    tables: dict[str, dict[str, list[dict[str, Any]]]] = {}
    metrics: list[str] = []

    def table_for(records: Sequence[Mapping[str, Any]], label_key: str) -> dict[str, list]:
        table: dict[str, list[dict[str, Any]]] = {}
        for metric in _metric_names(records):
            if metric not in metrics:
                metrics.append(metric)
            entries = []
            for record in records:
                if f"{metric}_mean" not in record:
                    continue
                entries.append(
                    {
                        "experiment": record.get("experiment"),
                        "label": record.get(label_key, record.get("experiment")),
                        "mean": record.get(f"{metric}_mean"),
                        "min": record.get(f"{metric}_min"),
                        "max": record.get(f"{metric}_max"),
                        "n_points": record.get("n_points"),
                    }
                )
            if entries:
                table[metric] = entries
        return table

    tables["experiment"] = table_for(overall, "experiment")
    for dimension, records in by_dimension.items():
        tables[dimension] = table_for(list(records), dimension)
    return {
        "experiments": list(summary.get("experiments", [])),
        "dimensions": ["experiment"] + list(by_dimension),
        "metrics": metrics,
        "n_points": summary.get("n_points", 0),
        "tables": tables,
    }


class CampaignDAG:
    """A campaign as a cached rule graph: run → summarize → compare → report.

    Parameters
    ----------
    campaign:
        The declarative campaign to stage.
    store:
        The content-addressed store every stage reads from and writes to.
    version:
        Code-version cache-key component; defaults to
        :func:`~repro.artifacts.keys.code_version` (i.e.
        ``repro.__version__``).
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        store: ArtifactStore,
        *,
        version: Optional[str] = None,
    ) -> None:
        self.campaign = campaign
        self.store = store
        self.version = version if version is not None else code_version()
        self.points = campaign.expand()
        self.run_keys = tuple(run_key(point, version=self.version) for point in self.points)
        self.summarize_key = derived_key("summarize", self.run_keys, version=self.version)
        self.compare_key = derived_key("compare", (self.summarize_key,), version=self.version)
        self.report_key = derived_key(
            "report", (self.compare_key,), version=self.version, formats=list(REPORT_FORMATS)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nodes(self) -> list[DagNode]:
        """Every node of the graph, run nodes first, in dependency order."""
        nodes = [
            DagNode(stage="run", key=key, label=f"run[{point.index}]:{point.experiment}")
            for point, key in zip(self.points, self.run_keys)
        ]
        nodes.append(
            DagNode(
                stage="summarize",
                key=self.summarize_key,
                label="summarize",
                upstream=self.run_keys,
            )
        )
        nodes.append(
            DagNode(
                stage="compare",
                key=self.compare_key,
                label="compare",
                upstream=(self.summarize_key,),
            )
        )
        nodes.append(
            DagNode(
                stage="report",
                key=self.report_key,
                label="report",
                upstream=(self.compare_key,),
            )
        )
        return nodes

    def keys(self) -> list[str]:
        """Every key the DAG addresses (the live set for :meth:`ArtifactStore.gc`)."""
        return [node.key for node in self.nodes()]

    def status(self) -> dict[str, dict[str, int]]:
        """Per-stage cached/total counts (by file presence, no payload reads)."""
        status: dict[str, dict[str, int]] = {}
        for node in self.nodes():
            entry = status.setdefault(node.stage, {"cached": 0, "total": 0})
            entry["total"] += 1
            if node.key in self.store:
                entry["cached"] += 1
        return status

    def gc(self) -> int:
        """Drop every artifact in the store that this DAG does not address."""
        return self.store.gc(self.keys())

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(
        self,
        *,
        parallel: Optional[ParallelConfig] = None,
        session_parallel: Optional[ParallelConfig] = None,
        simulate: bool = True,
        force: bool = False,
    ) -> DagOutcome:
        """Bring every stage up to date and return the full outcome.

        Each stage first consults the store under its content key; only
        invalidated stages recompute (and persist).  ``simulate=False``
        forbids simulator executions: if any run artifact is missing the
        call raises :class:`~repro.errors.ArtifactError` naming the gap —
        this is what lets ``greenhpc report`` render from a warm store with
        a hard no-resimulation guarantee.  ``force=True`` recomputes every
        stage, overwriting cached artifacts.
        """
        stage_status: dict[str, str] = {}
        if not simulate and not force:
            missing = [
                point.index
                for point, key in zip(self.points, self.run_keys)
                if self.store.get(key) is None
            ]
            if missing:
                raise ArtifactError(
                    f"{len(missing)} of {len(self.points)} run artifact(s) missing from "
                    f"the store at {self.store.root} (point indices {missing[:10]}"
                    f"{', ...' if len(missing) > 10 else ''}); run the sweep with "
                    f"--cache-dir first, or materialize with simulate=True"
                )
        elif not simulate and force:
            raise ArtifactError("cannot force-recompute a DAG with simulate=False")
        result = run_campaign(
            self.campaign,
            parallel,
            session_parallel=session_parallel,
            store=self.store,
            force=force,
            version=self.version,
        )
        stage_status["run"] = f"{result.cache_hits} cached, {result.cache_misses} simulated"

        recorder = get_recorder()
        with recorder.span("dag.summarize") as span:
            summary = None if force else self.store.get(self.summarize_key)
            if summary is None:
                summary = summarize_payload(result)
                self.store.put(self.summarize_key, summary)
                stage_status["summarize"] = "computed"
            else:
                stage_status["summarize"] = "cached"
            span.set("status", stage_status["summarize"])

        with recorder.span("dag.compare") as span:
            comparison = None if force else self.store.get(self.compare_key)
            if comparison is None:
                comparison = compare_payload(summary)
                self.store.put(self.compare_key, comparison)
                stage_status["compare"] = "computed"
            else:
                stage_status["compare"] = "cached"
            span.set("status", stage_status["compare"])

        with recorder.span("dag.report") as span:
            report = None if force else self.store.get(self.report_key)
            if report is None or set(REPORT_FORMATS) - set(report):
                title = self.campaign.base.name
                report = {
                    "markdown": render_markdown(comparison, title=title),
                    "html": render_html(comparison, title=title),
                }
                self.store.put(self.report_key, report)
                stage_status["report"] = "computed"
            else:
                stage_status["report"] = "cached"
            span.set("status", stage_status["report"])

        return DagOutcome(
            result=result,
            summary=summary,
            comparison=comparison,
            report_markdown=report["markdown"],
            report_html=report["html"],
            stage_status=stage_status,
        )
