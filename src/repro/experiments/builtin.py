"""The built-in experiment catalogue (every headline analysis of the paper).

Each runner takes the session, pulls the cached substrates it needs, and
returns an :class:`~repro.experiments.result.ExperimentResult`.  Importing
:mod:`repro.experiments` imports this module, which populates the registry —
and thereby the CLI, whose subcommands are generated from it.
"""

from __future__ import annotations

from ..analysis.figures import (
    fig2_power_vs_green_share,
    fig3_price_vs_green_share,
    fig4_power_vs_temperature,
    fig5_energy_vs_deadlines,
)
from ..analysis.tables import table1_conferences
from ..core.levers import SCHEDULER_REGISTRY, default_operating_grid, resolve_policy
from ..core.policies import LoadShiftingPolicy, evaluate_deadline_restructuring, evaluate_load_shifting
from ..core.stress import StressTestHarness
from ..errors import ConfigurationError, FleetError, OptimizationError, SchedulingError
from ..scheduler.powercap import powercap_energy_tradeoff
from .campaign import split_value_list
from .registry import ExperimentParam, experiment
from .result import ExperimentResult
from .session import ExperimentSession

__all__ = [
    "run_figures",
    "run_table1",
    "run_powercap",
    "run_shifting",
    "run_deadlines",
    "run_stress",
    "run_schedule",
    "run_optimize",
    "run_fleet",
]


def _resolve_policy_list(policies: str) -> tuple[str, ...]:
    """Parse and validate a comma-separated list of policy names/specs.

    Splitting is the shared :func:`split_value_list` rule (commas inside
    stage parentheses do not split, so ``backfill,backfill+carbon(cap=0.7)``
    is two policies), and every entry must resolve against the policy
    registry or the pipeline grammar.
    """
    names = split_value_list(policies, "policies")
    try:
        for name in names:
            resolve_policy(name)
    except (OptimizationError, SchedulingError) as exc:
        message = f"invalid policies {policies!r}: {exc}"
        if "greenhpc policies" not in message:
            message += (
                f"; registered: {sorted(SCHEDULER_REGISTRY)} (run `greenhpc "
                "policies` for the policy and stage catalogue)"
            )
        raise ConfigurationError(message) from None
    return names

#: Minimum horizon for the Fig. 5 (two partial years) analysis.
FIG5_MIN_MONTHS = 16


@experiment("figures", help="the Fig. 2-5 monthly series and their statistics")
def run_figures(session: ExperimentSession) -> ExperimentResult:
    """Figs. 2-5: monthly power/price/temperature series vs. the green share."""
    scenario = session.scenario()
    fig2 = fig2_power_vs_green_share(scenario)
    fig3 = fig3_price_vs_green_share(scenario)
    fig4 = fig4_power_vs_temperature(scenario)
    rows = [
        {
            "month": label,
            "power_kw": float(fig2.monthly_power_kw[i]),
            "solar_wind_pct": float(fig2.monthly_renewable_share_pct[i]),
            "price_per_mwh": float(fig3.monthly_price_per_mwh[i]),
            "temperature_f": float(fig4.monthly_temperature_f[i]),
        }
        for i, label in enumerate(fig2.month_labels)
    ]
    scalars = {
        "fig2_correlation": fig2.correlation,
        "fig3_correlation": fig3.correlation,
        "fig4_spearman": fig4.spearman,
        "fig4_pearson": fig4.pearson,
    }
    notes = [
        f"Fig.2 corr(power, green share)      = {fig2.correlation:+.3f}",
        f"Fig.3 corr(price, green share)      = {fig3.correlation:+.3f}",
        f"Fig.4 spearman(power, temperature)  = {fig4.spearman:+.3f}",
    ]
    if session.spec.n_months >= FIG5_MIN_MONTHS:
        fig5 = fig5_energy_vs_deadlines(scenario)
        scalars["fig5_same_month_correlation"] = fig5.same_month_correlation
        scalars["fig5_early_2021_vs_2020_ratio"] = fig5.early_2021_vs_2020_ratio
        scalars["fig5_lead_lag_months"] = fig5.lead_lag_months
        notes.append(f"Fig.5 corr(energy, deadlines)       = {fig5.same_month_correlation:+.3f}")
        notes.append(f"Fig.5 early-2021 / early-2020 ratio = {fig5.early_2021_vs_2020_ratio:.3f}")
    return ExperimentResult(
        name="figures", spec=session.spec, rows=tuple(rows), scalars=scalars, notes=tuple(notes)
    )


@experiment("table1", help="the reproduced Table I conference catalogue")
def run_table1(session: ExperimentSession) -> ExperimentResult:
    """Table I: the conference catalogue and its deadline seasonality."""
    table = table1_conferences()
    rows = [
        {"area": area, "conferences": ", ".join(names)} for area, names in table.rows.items()
    ]
    scalars = {
        "n_conferences": table.n_conferences,
        "spring_summer_fraction": table.spring_summer_fraction,
        "winter_fraction": table.winter_fraction,
        "busiest_deadline_month": table.busiest_deadline_month(),
    }
    notes = [
        f"conferences: {table.n_conferences}",
        f"spring/summer deadline share: {table.spring_summer_fraction:.0%}",
    ]
    return ExperimentResult(
        name="table1", spec=session.spec, rows=tuple(rows), scalars=scalars, notes=tuple(notes)
    )


@experiment("powercap", help="the power-cap energy/time trade-off sweep")
def run_powercap(session: ExperimentSession) -> ExperimentResult:
    """Section II.C: the energy/runtime frontier of GPU power caps."""
    points = powercap_energy_tradeoff(
        session.spec.workload.gpu_model, parallel=session.parallel
    )
    rows = [
        {
            "cap_fraction": p.cap_fraction,
            "cap_w": p.cap_w,
            "runtime_penalty_pct": p.runtime_penalty_pct,
            "energy_savings_pct": p.energy_savings_pct,
        }
        for p in points
    ]
    scalars = {
        "gpu_model": session.spec.workload.gpu_model,
        "n_caps": len(points),
        "max_energy_savings_pct": max(p.energy_savings_pct for p in points),
    }
    return ExperimentResult(name="powercap", spec=session.spec, rows=tuple(rows), scalars=scalars)


@experiment(
    "shifting",
    help="carbon/price-aware load-shifting savings",
    params=(
        ExperimentParam("deferrable", float, 0.3, help="deferrable load fraction"),
        ExperimentParam("window", int, 24, help="shifting window in hours"),
        ExperimentParam(
            "signal",
            str,
            "carbon",
            help="signal to shift toward",
            choices=("carbon", "price", "renewable"),
        ),
    ),
)
def run_shifting(
    session: ExperimentSession, deferrable: float, window: int, signal: str
) -> ExperimentResult:
    """Section II.A: what re-timing deferrable load would capture."""
    policy = LoadShiftingPolicy(deferrable_fraction=deferrable, window_h=window, signal=signal)
    outcome = evaluate_load_shifting(
        facility_load_kwh=session.hourly_facility_load_kwh(),
        grid=session.grid,
        policy=policy,
    )
    summary = dict(outcome.summary())
    scalars = {
        "emissions_savings_pct": summary["emissions_savings_pct"],
        "cost_savings_pct": summary["cost_savings_pct"],
        "peak_power_change_pct": summary["peak_power_change_pct"],
    }
    return ExperimentResult(
        name="shifting",
        spec=session.spec,
        rows=(summary,),
        scalars=scalars,
        params={"deferrable": deferrable, "window": window, "signal": signal},
    )


@experiment("deadlines", help="the deadline-restructuring comparison")
def run_deadlines(session: ExperimentSession) -> ExperimentResult:
    """Section III: the conference-calendar restructuring options."""
    spec = session.spec
    scenario = session.scenario()
    outcomes = evaluate_deadline_restructuring(
        seed=spec.seed,
        start_year=spec.start_year,
        n_months=spec.n_months,
        demand_model=scenario.demand_model,
        weather_hourly_c=scenario.weather_hourly_c,
        grid=scenario.grid,
        trace_config=spec.trace_config(),
    )
    rows = [dict(outcome.summary()) for outcome in outcomes.values()]
    greenest = min(outcomes.values(), key=lambda o: o.total_emissions_t)
    scalars = {
        "n_options": len(outcomes),
        "greenest_option": greenest.option,
        "greenest_emissions_t": greenest.total_emissions_t,
    }
    return ExperimentResult(name="deadlines", spec=session.spec, rows=tuple(rows), scalars=scalars)


@experiment("stress", help="the Section II.B stress-test battery")
def run_stress(session: ExperimentSession) -> ExperimentResult:
    """Section II.B: degradation under the standard stress battery."""
    spec = session.spec
    scenario = session.scenario()
    harness = StressTestHarness(
        start_year=spec.start_year,
        n_months=spec.n_months,
        seed=spec.seed,
        trace_config=spec.trace_config(),
        baseline_weather_c=scenario.weather_hourly_c,
        grid=scenario.grid,
    )
    results = harness.run_battery(parallel=session.parallel)
    rows = StressTestHarness.degradation_table(results)
    worst = max(rows, key=lambda row: row["energy_increase_pct"])
    scalars = {
        "n_scenarios": len(results),
        "worst_scenario": worst["scenario"],
        "worst_energy_increase_pct": worst["energy_increase_pct"],
        "total_hours_cooling_overloaded": int(
            sum(r.hours_cooling_overloaded for r in results.values())
        ),
    }
    return ExperimentResult(name="stress", spec=session.spec, rows=tuple(rows), scalars=scalars)


@experiment(
    "schedule",
    help="one (composed) scheduling policy end-to-end on a job-level trace",
    params=(
        ExperimentParam(
            "policy",
            str,
            "backfill",
            help=(
                "registered policy name or pipeline spec string, e.g. "
                "'backfill+carbon(cap=0.7)+budget' (see `greenhpc policies`)"
            ),
        ),
        ExperimentParam("jobs", int, 300, help="number of jobs in the generated trace"),
        ExperimentParam("horizon_days", float, 7.0, help="trace horizon in days"),
    ),
)
def run_schedule(
    session: ExperimentSession, policy: str, jobs: int, horizon_days: float
) -> ExperimentResult:
    """One simulator run of any policy composition, with the headline metrics.

    This is the sweep surface for the composable-policy space: a campaign
    grid over ``policy`` (``--grid "policy=backfill,backfill+carbon(cap=0.7)"``)
    compares arbitrary pipeline spellings on identical seeded worlds.
    """
    names = _resolve_policy_list(policy)
    if len(names) != 1:
        raise ConfigurationError(
            f"schedule takes exactly one policy, got {len(names)}: {list(names)}"
        )
    (policy,) = names
    result = session.simulate_policy(
        policy, n_jobs=jobs, horizon_h=horizon_days * 24.0
    )
    summary = result.summary()
    scalars = dict(summary)
    scalars["deadline_miss_rate"] = result.deadline_miss_rate
    notes = [
        f"policy: {result.scheduler_name}",
        f"facility energy: {result.facility_energy_kwh:.1f} kWh, "
        f"emissions: {result.total_emissions_kg:.1f} kg, "
        f"mean wait: {result.mean_wait_h:.2f} h",
    ]
    return ExperimentResult(
        name="schedule",
        spec=session.spec,
        rows=(summary,),
        scalars=scalars,
        params={"policy": policy, "jobs": jobs, "horizon_days": horizon_days},
        notes=tuple(notes),
    )


@experiment(
    "fleet",
    help="multi-site fleet co-simulation with geo-aware job routing",
    params=(
        ExperimentParam(
            "fleet",
            str,
            "tri-site-small",
            help="registered fleet name (see repro.fleet.fleet_names())",
        ),
        ExperimentParam(
            "router",
            str,
            "",
            help=(
                "routing spec(s), e.g. 'carbon-min+queue-cap(max=50)'; "
                "comma-separated to compare several in one run; empty = the "
                "fleet's own default (see `greenhpc policies` for the tokens)"
            ),
        ),
        ExperimentParam("policy", str, "backfill", help="per-site scheduling policy"),
        ExperimentParam("jobs", int, 300, help="number of jobs in the shared generated trace"),
        ExperimentParam("horizon_days", float, 7.0, help="co-simulation horizon in days"),
    ),
)
def run_fleet(
    session: ExperimentSession,
    fleet: str,
    router: str,
    policy: str,
    jobs: int,
    horizon_days: float,
) -> ExperimentResult:
    """Route a shared workload across a fleet's member sites, per router.

    The session's world overrides (``--seed``, ``--months``, a swept
    ``seed``/``n_months`` campaign dimension) apply to *every* member site,
    so a fleet point and a single-site point of the same campaign describe
    the same worlds.  ``router`` is the sweepable lever: a campaign grid over
    it (``--grid "router=round-robin,carbon-min,renewable-max"``) compares
    routing policies on identical seeded fleets, and a comma-separated list
    compares them within one run.
    """
    # Imported lazily: repro.fleet builds on this package, so a module-level
    # import would be circular when repro.fleet is imported first.
    from ..fleet import FleetSimulator, get_fleet, make_router

    fleet_spec = get_fleet(fleet)
    spec = session.spec
    fleet_spec = fleet_spec.with_member_overrides(
        seed=spec.seed, start_year=spec.start_year, n_months=spec.n_months
    )
    routers = (
        split_value_list(router, "fleet routers") if router.strip() else (fleet_spec.router,)
    )
    try:
        routers = tuple(make_router(name).name for name in routers)  # canonical spellings
    except FleetError as exc:
        raise ConfigurationError(
            f"invalid router {router!r}: {exc} (run `greenhpc policies` for the "
            "router catalogue)"
        ) from None

    rows: list[dict] = []
    results = []
    for router_name in routers:
        # The session's --workers / GREENHPC_WORKERS configuration doubles as
        # the fleet stepping mode: >1 workers steps the member sites on
        # worker processes (bit-identical records, see repro.fleet.parallel).
        result = FleetSimulator(
            fleet_spec,
            router=router_name,
            policy=policy,
            horizon_h=horizon_days * 24.0,
            parallel=session.parallel,
            session=session,
        ).run(n_jobs=jobs)
        results.append(result)
        fleet_row = {"site": "(fleet)"}
        fleet_row.update(result.summary())
        rows.append(fleet_row)
        rows.extend(result.site_rows())

    greenest = min(results, key=lambda r: r.total_emissions_kg)
    headline = results[0]
    scalars = dict(headline.summary())
    scalars["n_routers"] = len(results)
    scalars["greenest_router"] = greenest.router
    scalars["greenest_emissions_kg"] = greenest.total_emissions_kg
    # Only the (deterministic) worker count enters the scalars: campaign rows
    # must stay byte-identical across serial/parallel runs, so wall-clock
    # stays on FleetResult.step_timings rather than in result rows.
    timings = headline.step_timings
    stepping = "serial"
    if timings is not None:
        scalars["step_workers"] = timings.n_workers
        if timings.mode == "parallel":
            stepping = f"parallel x{timings.n_workers}"
    notes = [
        f"fleet: {fleet_spec.name} ({fleet_spec.n_sites} sites), policy: {policy}, "
        f"stepping: {stepping}",
    ]
    for result in results:
        counts = ", ".join(f"{name}={n}" for name, n in result.dispatch_counts().items())
        notes.append(
            f"router {result.router}: {result.facility_energy_kwh:.1f} kWh, "
            f"{result.total_emissions_kg:.1f} kgCO2e, "
            f"mean wait {result.mean_wait_h:.2f} h [{counts}]"
        )
    return ExperimentResult(
        name="fleet",
        spec=session.spec,
        rows=tuple(rows),
        scalars=scalars,
        params={
            "fleet": fleet,
            "router": ",".join(routers),
            "policy": policy,
            "jobs": jobs,
            "horizon_days": horizon_days,
        },
        notes=tuple(notes),
    )


@experiment(
    "optimize",
    help="the Eq. 1 operating-point search on a job-level trace",
    params=(
        ExperimentParam("jobs", int, 300, help="number of jobs in the generated trace"),
        ExperimentParam("horizon_days", float, 7.0, help="trace horizon in days"),
        ExperimentParam(
            "floor", float, 0.9, help="activity floor as a fraction of baseline GPU-hours"
        ),
        ExperimentParam(
            "policies",
            str,
            "backfill,energy-aware,carbon-aware",
            help=(
                "comma-separated policy names or pipeline spec strings to search "
                f"over (registered: {', '.join(SCHEDULER_REGISTRY)}; "
                "`greenhpc policies` lists the stage grammar)"
            ),
        ),
    ),
)
def run_optimize(
    session: ExperimentSession, jobs: int, horizon_days: float, floor: float, policies: str
) -> ExperimentResult:
    """Eq. 1: exhaustive search over supply/policy/power-cap operating points."""
    policy_names = _resolve_policy_list(policies)
    outcome = session.optimize_operations(
        n_jobs=jobs,
        horizon_h=horizon_days * 24.0,
        activity_floor_fraction=floor,
        points=default_operating_grid(policy_names=policy_names),
    )
    rows = outcome.frontier_records()
    savings_pct = 100.0 * outcome.savings_vs_baseline()
    best_label = outcome.best.point.label() if outcome.best is not None else None
    scalars = {
        "n_evaluated": len(outcome.evaluated),
        "n_feasible": len(outcome.feasible_points),
        "best_point": best_label,
        "savings_vs_baseline_pct": savings_pct,
    }
    notes = []
    if best_label is not None:
        notes.append(f"best operating point: {best_label}")
        notes.append(f"objective savings vs. baseline: {savings_pct:.1f}%")
    return ExperimentResult(
        name="optimize",
        spec=session.spec,
        rows=tuple(rows),
        scalars=scalars,
        params={"jobs": jobs, "horizon_days": horizon_days, "floor": floor, "policies": policies},
        notes=tuple(notes),
    )
