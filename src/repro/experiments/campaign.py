"""Declarative multi-scenario campaigns over the experiment registry.

A :class:`CampaignSpec` describes a whole *sweep* of experiment runs in one
object: a base :class:`~repro.experiments.spec.ScenarioSpec`, a grid over
spec fields (``seed``, ``site``, ``n_months``, ...), a grid over experiment
parameters, and one or more registered experiment names.  :meth:`CampaignSpec.
expand` turns that description into an ordered list of
:class:`CampaignPoint`\\ s — each with a reproducible derived seed obtained
through :func:`~repro.parallel.sweep.grid_points`, so the points (and
therefore every row of the output) are identical whether the campaign runs
serially or across processes.

:func:`run_campaign` executes the points with
:func:`~repro.parallel.pool.map_parallel`.  Each worker process keeps one
:class:`~repro.experiments.session.ExperimentSession` per distinct scenario
spec, so the expensive substrates (weather, load trace, grid series) are
built once per world per worker and shared by every experiment/parameter
point that runs in it — the same economy the session gives a single-process
multi-analysis run.  Results are collected into a columnar
:class:`CampaignResult` with flat ``rows``, ``group_by``/``summarize``
aggregation and ``to_json``/``to_csv`` export.

Campaign caching
----------------
``run_campaign(campaign, store=ArtifactStore(...))`` makes re-runs
incremental: before dispatching any point, the driver consults the
content-addressed store (:mod:`repro.artifacts`) under each point's
:func:`~repro.artifacts.keys.run_key` — a stable hash of (scenario spec,
experiment, resolved params, derived seed, code version).  Hits skip the
simulation entirely; misses run and are persisted, so an unchanged re-sweep
performs **zero** simulator executions and returns rows byte-identical to
the cold run (cached and fresh results alike are normalized through the
stored JSON form).  Editing one grid value, one experiment parameter, or
upgrading the package changes only the affected keys, so only that
subgraph reruns.  Hit/miss counts surface as
:attr:`CampaignResult.cache_hits` / :attr:`CampaignResult.cache_misses`,
and the ``greenhpc sweep --cache-dir`` flag wires the same store through
the CLI.  Derived stages (summarize → compare → report) chain on top in
:mod:`repro.experiments.dag`.

>>> from repro.experiments import CampaignSpec, run_campaign
>>> campaign = CampaignSpec(
...     experiments=("table1", "powercap"),
...     scenario_grid={"seed": [0, 1], "n_months": [3, 4]},
... )
>>> result = run_campaign(campaign)            # doctest: +SKIP
>>> result.summarize("experiment")             # doctest: +SKIP

Because experiment parameters are ordinary grid dimensions, the composable
policy space sweeps directly: a ``param_grid`` over the ``schedule``
experiment's ``policy`` parameter enumerates pipeline spec strings
(``{"policy": ["backfill", "backfill+carbon(cap=0.7)+budget", ...]}``) —
see ``examples/policy_composition.py``.
"""

from __future__ import annotations

import csv
import functools
import io
import json
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..artifacts.store import ArtifactStore

from ..config import config_to_jsonable
from ..errors import ConfigurationError, DataError, SchedulingError
from ..obs.profile import RunProfile
from ..obs.recorder import get_recorder
from ..parallel.pool import ParallelConfig, map_parallel
from ..parallel.sweep import SweepPoint, grid_points
from ..rng import derive_seed
from ..scheduler.compose import split_top_level
from .registry import get_experiment
from .result import ExperimentResult
from .session import ExperimentSession
from .spec import ScenarioSpec, get_scenario, get_site

__all__ = [
    "CampaignPoint",
    "CampaignSpec",
    "CampaignResult",
    "run_campaign",
    "result_to_payload",
    "result_from_payload",
    "split_value_list",
]


def split_value_list(raw: str, what: str = "value list") -> tuple[str, ...]:
    """Parse a non-empty comma-separated value list, paren-aware.

    The shared splitting rule for every comma-separated grid/list surface
    (``greenhpc sweep --grid key=v1,v2``, ``--experiments``, the ``fleet``
    experiment's ``router`` list, the ``optimize`` experiment's policies):
    commas inside parentheses do not split, so parameterized specs like
    ``backfill+carbon(cap=0.7)`` or ``carbon-min+queue-cap(max=50)`` survive
    as single values.  Raises :class:`ConfigurationError` (naming ``what``)
    on unbalanced parentheses or an empty list.
    """
    try:
        parts = split_top_level(raw)
    except SchedulingError as exc:
        raise ConfigurationError(f"could not parse {what}: {exc}") from None
    values = tuple(value for value in (part.strip() for part in parts) if value)
    if not values:
        raise ConfigurationError(
            f"{what} must be a non-empty comma-separated list, got {raw!r}"
        )
    return values

#: Fields of :class:`ScenarioSpec` a campaign's ``scenario_grid`` may sweep.
SPEC_GRID_FIELDS: frozenset[str] = frozenset(f.name for f in fields(ScenarioSpec))


@dataclass(frozen=True)
class CampaignPoint:
    """One expanded run of a campaign: experiment × scenario × parameters.

    Attributes
    ----------
    index:
        Position of the point in the expanded campaign (stable across runs
        and across serial/parallel execution).
    experiment:
        Registered experiment name to run at this point.
    spec:
        The fully resolved scenario spec for this point.
    params:
        Experiment parameter overrides (only parameters the experiment
        declares).
    seed:
        Seed derived from the campaign's master seed via ``grid_points`` and
        the experiment name — the point's stable identity, recorded in result
        rows as ``point_seed`` so two runs of the same campaign are verifiably
        the same sweep.  Experiment randomness is governed by ``spec.seed``
        (sweep the ``seed`` spec field to vary it); the derived seed is the
        handle for point-level stochastic extensions (e.g. replica noise).
    varied:
        The grid values this point was built from, with human-readable labels
        (e.g. a swept site appears under its registered name) — these become
        the identifying columns of the result row.
    """

    index: int
    experiment: str
    spec: ScenarioSpec
    params: Mapping[str, Any]
    seed: int
    varied: Mapping[str, Any]


def _label_value(value: Any) -> Any:
    """A row/CSV-friendly label for one grid value (configs label by name)."""
    if hasattr(value, "__dataclass_fields__"):
        return getattr(value, "name", str(value))
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative multi-scenario, multi-experiment sweep.

    Attributes
    ----------
    experiments:
        Names of registered experiments to run at every grid point.
    base:
        The scenario spec every point starts from — a :class:`ScenarioSpec`
        or the name of a registered scenario.
    scenario_grid:
        Spec field name -> values to sweep (``seed``, ``site``, ``n_months``,
        ...).  ``site`` values may be registered site names.
    param_grid:
        Experiment parameter name -> values to sweep.  Each parameter must be
        declared by at least one of the campaign's experiments; experiments
        that do not declare a swept parameter run once per remaining
        combination (duplicates are dropped).
    seed:
        Master seed from which every point's ``point_seed`` is derived.
    """

    experiments: tuple[str, ...]
    base: Union[ScenarioSpec, str] = "default"
    scenario_grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    param_grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "experiments", tuple(self.experiments))
        if not self.experiments:
            raise ConfigurationError("campaign requires at least one experiment")
        declared: set[str] = set()
        for name in self.experiments:
            declared.update(p.name for p in get_experiment(name).params)
        base = self.base
        if isinstance(base, str):
            base = get_scenario(base)
        object.__setattr__(self, "base", base)
        scenario_grid = {key: tuple(values) for key, values in dict(self.scenario_grid).items()}
        param_grid = {key: tuple(values) for key, values in dict(self.param_grid).items()}
        unknown_fields = set(scenario_grid) - SPEC_GRID_FIELDS
        if unknown_fields:
            raise ConfigurationError(
                f"unknown scenario field(s) {sorted(unknown_fields)} in scenario_grid; "
                f"valid fields: {sorted(SPEC_GRID_FIELDS)}"
            )
        overlap = set(scenario_grid) & set(param_grid)
        if overlap:
            raise ConfigurationError(
                f"key(s) {sorted(overlap)} appear in both scenario_grid and param_grid"
            )
        unknown_params = set(param_grid) - declared
        if unknown_params:
            raise ConfigurationError(
                f"parameter(s) {sorted(unknown_params)} in param_grid are declared by none of "
                f"the campaign's experiments {list(self.experiments)}; declared: {sorted(declared)}"
            )
        for key, values in {**scenario_grid, **param_grid}.items():
            if not values:
                raise ConfigurationError(f"grid key {key!r} has no values")
        object.__setattr__(self, "scenario_grid", scenario_grid)
        object.__setattr__(self, "param_grid", param_grid)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def _resolve_spec(self, changes: Mapping[str, Any]) -> ScenarioSpec:
        """The base spec with one grid combination of field changes applied."""
        resolved = dict(changes)
        if isinstance(resolved.get("site"), str):
            resolved["site"] = get_site(resolved["site"])
        return self.base.replace(**resolved) if resolved else self.base

    def _sweep_points(self) -> list[SweepPoint]:
        """The combined scenario × parameter grid as seeded sweep points."""
        grid: dict[str, Sequence[Any]] = {**self.scenario_grid, **self.param_grid}
        if not grid:
            # No grids: one point per experiment, seeded like a 1-point sweep.
            return [SweepPoint(index=0, params={}, seed=derive_seed(self.seed, "sweep", 0))]
        return grid_points(grid, seed=self.seed)

    def expand(self) -> list[CampaignPoint]:
        """All campaign points, in a deterministic, reproducible order.

        The order (experiments outermost, then the grid in product order) and
        each point's derived seed depend only on the campaign definition —
        never on how the campaign is later executed — which is what makes
        serial and multi-process runs produce identical rows.  Experiments
        that do not declare a swept parameter would see duplicate points;
        those are dropped, keeping the first (lowest-index) occurrence.
        """
        sweep_points = self._sweep_points()
        points: list[CampaignPoint] = []
        seen: set[tuple[str, ScenarioSpec, tuple[tuple[str, Any], ...]]] = set()
        index = 0
        for name in self.experiments:
            declared = {p.name for p in get_experiment(name).params}
            for sweep_point in sweep_points:
                spec_changes = {
                    key: value
                    for key, value in sweep_point.params.items()
                    if key in self.scenario_grid
                }
                params = {
                    key: value
                    for key, value in sweep_point.params.items()
                    if key in self.param_grid and key in declared
                }
                spec = self._resolve_spec(spec_changes)
                key = (name, spec, tuple(sorted(params.items())))
                if key in seen:
                    continue
                seen.add(key)
                varied = {k: _label_value(v) for k, v in spec_changes.items()}
                varied.update(params)
                points.append(
                    CampaignPoint(
                        index=index,
                        experiment=name,
                        spec=spec,
                        params=params,
                        seed=derive_seed(sweep_point.seed, name),
                        varied=varied,
                    )
                )
                index += 1
        return points

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON-ready dictionary form of the campaign definition."""
        return {
            "experiments": list(self.experiments),
            "base": self.base.to_dict(),
            "scenario_grid": {
                key: [config_to_jsonable(_label_value(v)) for v in values]
                for key, values in self.scenario_grid.items()
            },
            "param_grid": {
                key: [config_to_jsonable(v) for v in values]
                for key, values in self.param_grid.items()
            },
            "seed": self.seed,
        }


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

#: One session per distinct scenario spec, local to this (worker) process.
#: ``map_parallel`` hands each worker a chunk of points; points sharing a
#: spec reuse the session's cached substrates instead of rebuilding them.
_WORKER_SESSIONS: dict[tuple[ScenarioSpec, Optional[ParallelConfig]], ExperimentSession] = {}

#: Cache bound: campaigns expand with same-spec points adjacent, so a small
#: FIFO window keeps the reuse win while a serial driver process (or a
#: long-lived worker) cannot accumulate every world it ever built.
_MAX_WORKER_SESSIONS = 8


def _worker_session(
    spec: ScenarioSpec, parallel: Optional[ParallelConfig] = None
) -> ExperimentSession:
    """The process-local session for ``spec`` (created on first use)."""
    key = (spec, parallel)
    session = _WORKER_SESSIONS.get(key)
    if session is None:
        while len(_WORKER_SESSIONS) >= _MAX_WORKER_SESSIONS:
            _WORKER_SESSIONS.pop(next(iter(_WORKER_SESSIONS)))
        session = ExperimentSession(spec, parallel=parallel)
        _WORKER_SESSIONS[key] = session
    return session


def clear_worker_sessions() -> None:
    """Drop this process's cached sessions (tests and long-lived services)."""
    _WORKER_SESSIONS.clear()


def _evaluate_campaign_point(
    point: CampaignPoint, session_parallel: Optional[ParallelConfig] = None
) -> ExperimentResult:
    """Run one campaign point on the worker-local session for its spec.

    The ``campaign.evaluate`` span lands in the coordinator's trace for
    serial point execution; with process-parallel points the workers' spans
    stay worker-local (point results, not traces, cross that boundary).
    """
    with get_recorder().span(
        "campaign.evaluate", index=point.index, experiment=point.experiment
    ):
        session = _worker_session(point.spec, session_parallel)
        return session.run(point.experiment, **dict(point.params))


def result_to_payload(result: ExperimentResult) -> dict[str, Any]:
    """The cacheable JSON payload of one point's experiment result.

    The scenario spec is deliberately *not* stored: it is part of the
    artifact's content address, and the live :class:`CampaignPoint` carries
    the authoritative spec object on reconstruction.
    """
    return {
        "experiment": result.name,
        "rows": config_to_jsonable(result.rows),
        "scalars": config_to_jsonable(result.scalars),
        "params": config_to_jsonable(result.params),
        "notes": list(result.notes),
    }


def result_from_payload(point: CampaignPoint, payload: Mapping[str, Any]) -> ExperimentResult:
    """Rebuild a point's :class:`ExperimentResult` from its cached payload."""
    try:
        return ExperimentResult(
            name=str(payload["experiment"]),
            spec=point.spec,
            rows=tuple(payload["rows"]),
            scalars=dict(payload["scalars"]),
            params=dict(payload["params"]),
            notes=tuple(payload["notes"]),
        )
    except (KeyError, TypeError, AttributeError) as exc:
        raise DataError(
            f"cached artifact for point {point.index} ({point.experiment!r}) "
            f"has an unusable payload: {exc}"
        ) from None


def run_campaign(
    campaign: CampaignSpec,
    parallel: Optional[ParallelConfig] = None,
    *,
    session_parallel: Optional[ParallelConfig] = None,
    store: Optional["ArtifactStore"] = None,
    force: bool = False,
    version: Optional[str] = None,
) -> "CampaignResult":
    """Expand ``campaign`` and evaluate every point, in processes when asked.

    Results come back in point order regardless of execution order, so the
    returned :class:`CampaignResult` is byte-identical between serial and
    parallel runs of the same campaign.

    ``parallel`` distributes the *points*; ``session_parallel`` is handed to
    each point's worker-local session, where inner layers pick it up — most
    notably the ``fleet`` experiment, whose member sites then step on worker
    processes of their own (:mod:`repro.fleet.parallel`), so a router sweep
    exploits both axes at once (points × sites).  It defaults to ``parallel``
    itself when omitted; the two multiply, so a campaign over F-site fleets
    with W workers can occupy up to W×(F+1) processes.

    ``store`` (an :class:`~repro.artifacts.ArtifactStore`) makes the run
    incremental: points whose :func:`~repro.artifacts.keys.run_key` is
    already cached skip simulation entirely; the rest run (through the same
    parallel dispatch) and are persisted.  ``force=True`` recomputes every
    point and overwrites its artifact.  With a store, every result — cached
    or fresh — is normalized through its stored JSON form, so warm and cold
    runs of the same campaign yield byte-identical rows.  ``version``
    overrides the code-version cache-key component (defaults to
    :func:`~repro.artifacts.keys.code_version`); a :class:`~repro.
    experiments.dag.CampaignDAG` passes its own so run keys and derived
    keys always agree.
    """
    points = campaign.expand()
    if session_parallel is None:
        session_parallel = parallel
    evaluate = functools.partial(_evaluate_campaign_point, session_parallel=session_parallel)
    recorder = get_recorder()
    mark = recorder.mark()

    def campaign_profile(span: Any) -> Optional[RunProfile]:
        if not recorder.enabled:
            return None
        return RunProfile.from_spans(
            recorder.spans_since(mark),
            total_s=span.record.wall_s,
            metrics=recorder.metrics.snapshot(),
        )

    if store is None:
        with recorder.span(
            "campaign.run", n_points=len(points), cached=False
        ) as run_span:
            results = map_parallel(evaluate, points, parallel)
        return CampaignResult(
            campaign=campaign,
            points=tuple(points),
            results=tuple(results),
            profile=campaign_profile(run_span),
        )

    from ..artifacts.keys import code_version, run_key

    if version is None:
        version = code_version()
    with recorder.span("campaign.run", n_points=len(points), cached=True) as run_span:
        key_by_index = {point.index: run_key(point, version=version) for point in points}
        by_index: dict[int, ExperimentResult] = {}
        if not force:
            for point in points:
                payload = store.get(key_by_index[point.index])
                if payload is not None:
                    by_index[point.index] = result_from_payload(point, payload)
                    recorder.event(
                        "campaign.point",
                        index=point.index,
                        experiment=point.experiment,
                        cache="hit",
                    )
        missed = [point for point in points if point.index not in by_index]
        if missed:
            # Cache-hit points never enter this span: a warm trace shows
            # campaign.point hit markers and no campaign.simulate at all.
            with recorder.span("campaign.simulate", n_points=len(missed)):
                fresh = map_parallel(evaluate, missed, parallel)
        else:
            fresh = []
        for point, result in zip(missed, fresh):
            payload = result_to_payload(result)
            store.put(key_by_index[point.index], payload)
            by_index[point.index] = result_from_payload(point, payload)
            recorder.event(
                "campaign.point",
                index=point.index,
                experiment=point.experiment,
                cache="miss",
            )
        run_span.set("cache_hits", len(points) - len(missed))
        run_span.set("cache_misses", len(missed))
    results = tuple(by_index[point.index] for point in points)
    return CampaignResult(
        campaign=campaign,
        points=tuple(points),
        results=results,
        cache_hits=len(points) - len(missed),
        cache_misses=len(missed),
        profile=campaign_profile(run_span),
    )


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class CampaignResult:
    """Columnar outcome of a campaign: one flat row per evaluated point.

    ``results`` keeps every full :class:`ExperimentResult` (aligned with
    ``points``) for drill-down; ``rows`` flattens each point's identifying
    grid values and headline scalars into one record for tables, grouping
    and export.

    When the campaign ran against an :class:`~repro.artifacts.ArtifactStore`
    (``run_campaign(..., store=...)``), ``cache_hits``/``cache_misses``
    record how many points were served from the store versus simulated;
    both are ``None`` for uncached runs.

    ``profile`` is the run's :class:`~repro.obs.profile.RunProfile` when the
    campaign executed under tracing, else ``None``; it never participates in
    ``rows`` or cached payloads, so warm/cold and traced/untraced campaign
    rows stay byte-identical.
    """

    campaign: CampaignSpec
    points: tuple[CampaignPoint, ...]
    results: tuple[ExperimentResult, ...]
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    profile: Optional[RunProfile] = None

    def __post_init__(self) -> None:
        if len(self.points) != len(self.results):
            raise ConfigurationError("points and results must have the same length")

    def __len__(self) -> int:
        return len(self.points)

    @property
    def rows(self) -> list[dict[str, Any]]:
        """One flat record per point: identity columns, then result scalars.

        Built once and cached (the dataclass is frozen, so the rows are
        deterministic); callers receive fresh copies of each record so they
        can mutate them freely.
        """
        cached = getattr(self, "_rows", None)
        if cached is None:
            cached = []
            for point, result in zip(self.points, self.results):
                record: dict[str, Any] = {"index": point.index, "experiment": point.experiment}
                record.update(point.varied)
                record["point_seed"] = point.seed
                for key, value in result.scalars.items():
                    record.setdefault(key, value)
                cached.append(record)
            object.__setattr__(self, "_rows", cached)
        return [dict(record) for record in cached]

    def column(self, key: str) -> list[Any]:
        """One column of :attr:`rows` (missing values become ``None``)."""
        return [row.get(key) for row in self.rows]

    def result_for(self, index: int) -> ExperimentResult:
        """The full experiment result of the point with campaign ``index``."""
        for point, result in zip(self.points, self.results):
            if point.index == index:
                return result
        raise DataError(f"campaign has no point with index {index}")

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def group_by(self, *keys: str) -> dict[tuple[Any, ...], list[dict[str, Any]]]:
        """Rows grouped by the values of ``keys``, in first-seen order."""
        if not keys:
            raise ConfigurationError("group_by requires at least one key")
        groups: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
        for row in self.rows:
            group = tuple(row.get(key) for key in keys)
            groups.setdefault(group, []).append(row)
        return groups

    def summarize(
        self, *keys: str, values: Optional[Iterable[str]] = None
    ) -> list[dict[str, Any]]:
        """Per-group ``mean``/``min``/``max`` of numeric columns.

        Parameters
        ----------
        keys:
            Columns to group by (e.g. ``"experiment"``, a swept spec field).
        values:
            Numeric columns to aggregate; by default every numeric *result*
            column — grouping keys, point-identity columns and the swept
            grid columns themselves are excluded (name them explicitly in
            ``values`` to aggregate them anyway).
        """
        rows = self.rows
        if values is None:
            excluded = (
                set(keys)
                | {"index", "point_seed"}
                | set(self.campaign.scenario_grid)
                | set(self.campaign.param_grid)
            )
            ordered: list[str] = []
            for row in rows:
                for key, value in row.items():
                    if key not in excluded and key not in ordered and _is_numeric(value):
                        ordered.append(key)
            values = ordered
        else:
            values = list(values)
        if keys:
            groups: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
            for row in rows:
                groups.setdefault(tuple(row.get(key) for key in keys), []).append(row)
        else:
            groups = {(): rows}
        summary = []
        for group, group_rows in groups.items():
            record: dict[str, Any] = dict(zip(keys, group))
            record["n_points"] = len(group_rows)
            for column in values:
                samples = [row[column] for row in group_rows if _is_numeric(row.get(column))]
                if not samples:
                    continue
                record[f"{column}_mean"] = sum(samples) / len(samples)
                record[f"{column}_min"] = min(samples)
                record[f"{column}_max"] = max(samples)
            summary.append(record)
        return summary

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self, *, include_results: bool = False) -> dict[str, Any]:
        """Strict-JSON-ready dictionary form (rows by default; full results on request)."""
        payload = {
            "campaign": self.campaign.to_dict(),
            "n_points": len(self.points),
            "rows": config_to_jsonable(self.rows),
        }
        if self.cache_hits is not None:
            payload["cache_hits"] = self.cache_hits
            payload["cache_misses"] = self.cache_misses
        if self.profile is not None:
            payload["profile"] = config_to_jsonable(self.profile.to_dict())
        if include_results:
            payload["results"] = [result.to_dict() for result in self.results]
        return payload

    def to_json(self, *, indent: int | None = None, include_results: bool = False) -> str:
        """Serialize :meth:`to_dict` as strict JSON text."""
        return json.dumps(
            self.to_dict(include_results=include_results), indent=indent, allow_nan=False
        )

    def to_csv(self) -> str:
        """The flat rows as CSV text (column set is the union over all rows).

        Quoting follows RFC 4180 via the :mod:`csv` module, so cell values
        containing commas, double quotes or newlines (policy/router pipeline
        specs are the usual source) round-trip through any CSV reader.
        Missing cells, ``None`` and non-finite floats (NaN/±inf are mapped
        to ``None`` by the JSON normalization) all render as empty cells.
        Lines end in ``"\\n"`` regardless of platform, so the text is stable
        for byte-level comparison.
        """
        rows = config_to_jsonable(self.rows)
        columns: list[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns, restval="", lineterminator="\n")
        writer.writeheader()
        for row in rows:
            writer.writerow({key: ("" if value is None else value) for key, value in row.items()})
        return buffer.getvalue()
