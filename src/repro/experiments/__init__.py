"""The unified experiment API.

This package is the toolkit's front door: declare *which world* to simulate
with a :class:`ScenarioSpec` (or pick a registered one by name), open an
:class:`ExperimentSession` over it, and run any registered experiment — every
paper analysis returns the same structured :class:`ExperimentResult`.

>>> from repro.experiments import ExperimentSession
>>> session = ExperimentSession("single-year", seed=7)
>>> figures = session.run("figures")
>>> figures.scalar("fig2_correlation") < 0
True

The experiment registry also drives the ``greenhpc`` CLI: each registered
experiment automatically becomes a subcommand with shared
``--seed/--months/--site/--json`` handling.
"""

from .registry import (
    ExperimentDefinition,
    ExperimentParam,
    experiment,
    experiment_names,
    get_experiment,
    list_experiments,
    register_experiment,
)
from .result import ExperimentResult
from .session import ExperimentSession
from .spec import (
    GridSpec,
    ScenarioSpec,
    WorkloadSpec,
    get_scenario,
    get_site,
    list_scenarios,
    register_scenario,
    register_site,
    scenario_names,
    site_names,
)
from . import builtin as _builtin  # noqa: F401 - populates the registry on import

__all__ = [
    "ScenarioSpec",
    "WorkloadSpec",
    "GridSpec",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "register_site",
    "get_site",
    "site_names",
    "ExperimentResult",
    "ExperimentParam",
    "ExperimentDefinition",
    "experiment",
    "register_experiment",
    "get_experiment",
    "experiment_names",
    "list_experiments",
    "ExperimentSession",
]
