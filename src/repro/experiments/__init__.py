"""The unified experiment API.

This package is the toolkit's front door: declare *which world* to simulate
with a :class:`ScenarioSpec` (or pick a registered one by name), open an
:class:`ExperimentSession` over it, and run any registered experiment — every
paper analysis returns the same structured :class:`ExperimentResult`.

>>> from repro.experiments import ExperimentSession
>>> session = ExperimentSession("single-year", seed=7)
>>> figures = session.run("figures")
>>> figures.scalar("fig2_correlation") < 0
True

The experiment registry also drives the ``greenhpc`` CLI: each registered
experiment automatically becomes a subcommand with shared
``--seed/--months/--site/--json`` handling.

For sweep-shaped questions ("compare N policies × M sites × K seeds"),
declare a :class:`CampaignSpec` — a base scenario, a grid over spec fields,
a grid over experiment parameters, and one or more experiments — and hand it
to :func:`run_campaign`, which fans the expanded points out across processes
(one substrate-caching session per distinct world per worker) and collects a
columnar :class:`CampaignResult`:

>>> from repro.experiments import CampaignSpec, run_campaign
>>> campaign = CampaignSpec(
...     experiments=("table1", "powercap"),
...     scenario_grid={"seed": [0, 1], "n_months": [3, 4]},
... )
>>> rows = run_campaign(campaign).rows   # 2 experiments x 4 worlds
>>> len(rows)
8

The same sweeps are available from the command line as ``greenhpc sweep``
(``--experiments``, repeatable ``--grid key=v1,v2,...``, ``--workers``,
``--json``/``--csv``).

Campaign caching and reports
----------------------------
Campaigns become *incremental* when run against a content-addressed
:class:`~repro.artifacts.ArtifactStore`: ``run_campaign(campaign,
store=...)`` serves already-computed points from disk (zero simulator
executions on an unchanged re-sweep, rows byte-identical to the cold run)
and simulates only points whose cache key — a stable hash of (scenario
spec, experiment, params, derived seed, code version) — is new.  The
:class:`~repro.experiments.dag.CampaignDAG` layer chains cached derived
stages on top (``run`` → ``summarize`` → ``compare`` → ``report``), each
keyed by its upstream keys so edits invalidate exactly the affected
subgraph, and ends in a rendered figure battery (markdown + embedded-SVG
HTML; :mod:`repro.experiments.report`).  From the command line::

    greenhpc sweep --experiments table1 --grid seed=0,1 --cache-dir ./cache
    greenhpc sweep --experiments table1 --grid seed=0,1 --cache-dir ./cache
    # second run: 0 simulated
    greenhpc report --experiments table1 --grid seed=0,1 \\
        --cache-dir ./cache --out ./report   # renders without re-simulating
"""

from .registry import (
    ExperimentDefinition,
    ExperimentParam,
    experiment,
    experiment_names,
    get_experiment,
    list_experiments,
    register_experiment,
)
from .result import ExperimentResult
from .session import ExperimentSession
from .spec import (
    GridSpec,
    ScenarioSpec,
    WorkloadSpec,
    get_scenario,
    get_site,
    list_scenarios,
    register_scenario,
    register_site,
    scenario_names,
    site_names,
)
from . import builtin as _builtin  # noqa: F401 - populates the registry on import
from .campaign import CampaignPoint, CampaignResult, CampaignSpec, run_campaign
from .dag import CampaignDAG, DagNode, DagOutcome

__all__ = [
    "CampaignPoint",
    "CampaignResult",
    "CampaignSpec",
    "CampaignDAG",
    "DagNode",
    "DagOutcome",
    "run_campaign",
    "ScenarioSpec",
    "WorkloadSpec",
    "GridSpec",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "register_site",
    "get_site",
    "site_names",
    "ExperimentResult",
    "ExperimentParam",
    "ExperimentDefinition",
    "experiment",
    "register_experiment",
    "get_experiment",
    "experiment_names",
    "list_experiments",
    "ExperimentSession",
]
