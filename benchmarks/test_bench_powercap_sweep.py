"""CLAIM-POWERCAP — GPU power caps save energy with minimal slowdown (Section II.C / [15]).

Paper claim (leaning on Frey et al.): "optimal GPU power-caps provide an
effective way to control energy consumption with minimal impact on training
speed".  The benchmark sweeps cap levels on the analytic V100/A100 models and
on a full training-job model (ResNet-50-like workload on 8 GPUs) and checks
the knee shape: moderate caps save clearly more energy than they cost in
runtime, with diminishing returns at very tight caps.
"""

from benchmarks._report import print_header, print_rows
from repro.scheduler.powercap import powercap_energy_tradeoff
from repro.workloads.training import TrainingJobModel, TrainingJobSpec

CAPS = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)


def test_bench_powercap_sweep(benchmark):
    points = benchmark(lambda: powercap_energy_tradeoff("V100", CAPS, utilization=0.95))

    print_header("Power-cap sweep — V100, saturating training workload")
    print_rows(
        [
            {
                "cap_fraction": p.cap_fraction,
                "cap_w": p.cap_w,
                "runtime_penalty_pct": p.runtime_penalty_pct,
                "energy_savings_pct": p.energy_savings_pct,
            }
            for p in points
        ]
    )

    spec = TrainingJobSpec(name="resnet50-like", single_gpu_hours=90.0)
    job_model = TrainingJobModel(spec)
    job_rows = []
    for cap in CAPS:
        run = job_model.run(8, None if cap >= 1.0 else cap)
        job_rows.append(
            {
                "cap_fraction": cap,
                "wall_clock_h": run.wall_clock_hours,
                "total_energy_kwh": run.total_energy_kwh,
            }
        )
    print_header("Power-cap sweep — end-to-end training job (8 GPUs, ResNet-50-like)")
    print_rows(job_rows)
    print("paper claim: moderate caps trade a few percent of speed for double-digit energy savings")

    by_cap = {p.cap_fraction: p for p in points}
    # 80% cap: single-digit slowdown, double-digit savings; savings always exceed penalty down to 60%.
    assert by_cap[0.8].runtime_penalty_pct < 10.0
    assert by_cap[0.8].energy_savings_pct > 10.0
    for cap in (0.9, 0.8, 0.7, 0.6):
        assert by_cap[cap].energy_savings_pct > by_cap[cap].runtime_penalty_pct
    # Diminishing returns: savings per extra watt of cap reduction shrink.
    marginal_high = by_cap[0.8].energy_savings_pct - by_cap[0.9].energy_savings_pct
    marginal_low = by_cap[0.5].energy_savings_pct - by_cap[0.6].energy_savings_pct
    assert marginal_low < marginal_high * 1.5
    # End-to-end job energy falls monotonically as caps tighten.
    energies = [row["total_energy_kwh"] for row in job_rows]
    assert all(b <= a for a, b in zip(energies, energies[1:]))
