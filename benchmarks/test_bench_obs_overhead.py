"""PERF-OBS-OVERHEAD — tracing must be (near) free, on and off.

The observability layer (:mod:`repro.obs`) leaves its instrumentation in the
simulator's hot paths permanently: span context managers around
begin/advance/finalize, observer hooks, recorder reads at construction.  The
design contract is that this costs nothing measurable —

* **disabled** (the default): the ambient recorder is the shared no-op, so
  instrumented call sites do no clock reads and no allocations; a run with
  the instrumentation in place must match the seed-era wall time (this is
  implicitly gated by the scale ladder in ``test_bench_simulator_scale.py``);
* **enabled**: recording every simulator span and metric for the medium tier
  (64 nodes x 4 GPUs, 2 000 jobs, 28 days — the profiled workload) must cost
  at most **1.05x** the untraced run.

The gate interleaves traced and untraced rounds and takes the **minimum
paired ratio**: each round times the two modes back-to-back under the same
ambient conditions, and the best round estimates the overhead floor.  (The
fleet lockstep gate's min-of-each-mode discipline works for its 1.3x budget
but is too noisy for a 5% one: two ~100 ms floors drift a few percent apart
between processes on a shared machine.)  One pytest-benchmark entry records
the traced run for the committed ``BENCH_<n>.json`` perf trajectory.
"""

from __future__ import annotations

import gc
import time

import pytest

from benchmarks._report import print_header, print_rows
from repro.climate.weather import WeatherModel
from repro.cluster.cooling import CoolingModel
from repro.cluster.resources import Cluster
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.config import FacilityConfig
from repro.grid.iso_ne import IsoNeLikeGrid
from repro.obs import NULL_RECORDER, TraceRecorder, recording, set_recorder
from repro.scheduler.backfill import BackfillScheduler
from repro.timeutils import SimulationCalendar
from repro.workloads.demand import DeadlineDemandModel
from repro.workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator

SEED = 11
HORIZON_28D = 28 * 24.0
FACILITY = FacilityConfig(n_nodes=64, gpus_per_node=4)
GPU_MODEL = "V100"
N_JOBS = 2000

#: Traced wall time may exceed untraced by at most this factor (best paired
#: round of N).
MAX_TRACED_RATIO = 1.05

ROUNDS = 7


@pytest.fixture(scope="module")
def world():
    calendar = SimulationCalendar(start_year=2020, n_months=2)
    weather = WeatherModel(seed=SEED).hourly_temperature_c(calendar)
    grid = IsoNeLikeGrid(calendar, seed=SEED)
    generator = SuperCloudTraceGenerator(
        SuperCloudTraceConfig(facility=FACILITY, gpu_model=GPU_MODEL),
        demand_model=DeadlineDemandModel(seed=SEED),
        seed=SEED,
    )
    jobs = generator.generate_jobs(n_jobs=N_JOBS, horizon_h=HORIZON_28D)
    return weather, grid, jobs


def _run(world):
    weather, grid, jobs = world
    simulator = ClusterSimulator(
        Cluster(FACILITY, gpu_model=GPU_MODEL),
        BackfillScheduler(),
        SimulationConfig(horizon_h=HORIZON_28D),
        weather_hourly_c=weather,
        cooling=CoolingModel(),
        grid=grid,
    )
    return simulator.run([job.clone_pending() for job in jobs])


def test_bench_traced_overhead_gate(world):
    """Traced medium-tier run <= 1.05x untraced, with identical job records."""
    set_recorder(NULL_RECORDER)  # belt and braces: start from the default
    untraced_result = _run(world)  # warm-up round, both substrates hot

    traced_walls, untraced_walls = [], []
    traced_result = None
    spans_recorded = 0
    for _ in range(ROUNDS):
        # A garbage-collection pass landing inside one mode's timed region
        # but not the other's would skew a ~5% gate; collect before each.
        gc.collect()
        t0 = time.perf_counter()
        untraced_result = _run(world)
        untraced_walls.append(time.perf_counter() - t0)
        recorder = TraceRecorder()
        with recording(recorder):
            gc.collect()
            t0 = time.perf_counter()
            traced_result = _run(world)
            traced_walls.append(time.perf_counter() - t0)
        spans_recorded = len(recorder)

    untraced_s = min(untraced_walls)
    traced_s = min(traced_walls)
    ratio = min(t / u for t, u in zip(traced_walls, untraced_walls))

    print_header("Tracing overhead (medium tier: 64x4 V100, 2000 jobs, 28 days)")
    print_rows(
        [
            {"mode": "untraced", "wall_s": untraced_s, "ratio": 1.0, "spans": 0},
            {
                "mode": "traced",
                "wall_s": traced_s,
                "ratio": ratio,
                "spans": spans_recorded,
            },
        ]
    )

    # Tracing must observe, never perturb.
    assert traced_result.job_records == untraced_result.job_records
    assert spans_recorded > 0
    assert ratio <= MAX_TRACED_RATIO, (
        f"traced run cost {ratio:.3f}x the untraced run "
        f"(gate: <= {MAX_TRACED_RATIO}x); tracing must stay near-free"
    )


def test_bench_traced_medium_run(benchmark, world):
    """The traced medium-tier wall time, recorded for the perf trajectory."""

    def traced():
        with recording(TraceRecorder()):
            return _run(world)

    result = benchmark.pedantic(traced, rounds=3, iterations=1, warmup_rounds=1)
    assert result.completed_jobs > 0
