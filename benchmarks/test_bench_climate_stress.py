"""STRESS — Dodd-Frank-style weatherized stress tests (Section II.B).

Paper proposal: run the facility through adverse-but-plausible climate/demand/
grid scenarios every year to find the weak points before reality does.  The
benchmark runs the standard scenario battery on a simulated year and reports
the degradation of energy, cooling, cost, emissions and PUE relative to the
baseline scenario, checking that severity orders the damage.
"""

from benchmarks._report import print_header, print_rows
from repro.climate.stress_scenarios import STANDARD_STRESS_SCENARIOS
from repro.config import FacilityConfig
from repro.core.stress import StressTestHarness
from repro.workloads.supercloud import SuperCloudTraceConfig


def test_bench_climate_stress_battery(benchmark):
    harness = StressTestHarness(
        n_months=12,
        seed=0,
        trace_config=SuperCloudTraceConfig(facility=FacilityConfig(n_nodes=128, gpus_per_node=2)),
    )
    results = benchmark.pedantic(
        lambda: harness.run_battery(STANDARD_STRESS_SCENARIOS), rounds=1, iterations=1, warmup_rounds=0
    )

    print_header("Weatherized stress-test battery (one simulated year)")
    print_rows([dict(r.summary()) for r in results.values()])
    print_header("Degradation relative to the baseline scenario")
    print_rows(StressTestHarness.degradation_table(results))

    baseline = results["baseline"]
    severe = results["severely-adverse"]
    assert severe.total_energy_mwh > baseline.total_energy_mwh
    assert severe.cooling_energy_mwh > baseline.cooling_energy_mwh
    assert severe.mean_pue > baseline.mean_pue
    assert severe.total_cost_kusd > baseline.total_cost_kusd
    # Damage is ordered by scenario severity (energy-wise).
    by_severity = sorted(results.values(), key=lambda r: r.severity)
    assert by_severity[-1].total_energy_mwh >= by_severity[0].total_energy_mwh
    # The winter-gas-crisis scenario is a cost event more than an energy event.
    winter = results["winter-gas-crisis"]
    cost_increase = winter.total_cost_kusd / baseline.total_cost_kusd - 1.0
    energy_increase = winter.total_energy_mwh / baseline.total_energy_mwh - 1.0
    assert cost_increase > energy_increase
