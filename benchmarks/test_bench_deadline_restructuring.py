"""CLAIM-DEADLINE — restructuring the conference-deadline calendar (Section III).

Paper proposal: if the same amount of research compute is spent regardless,
the calendar could (1) spread deadlines uniformly, (2) concentrate them in the
winter/spring months, or (3) abolish them for rolling submissions.  The
benchmark evaluates all three against the actual calendar on identical
facility/weather/grid substrates.
"""

from benchmarks._report import print_header, print_rows
from repro.core.policies import evaluate_deadline_restructuring


def test_bench_deadline_restructuring(benchmark):
    outcomes = benchmark.pedantic(
        lambda: evaluate_deadline_restructuring(seed=0, n_months=24),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    print_header("Section III — deadline-calendar options (identical facility, weather, grid)")
    print_rows([dict(o.summary()) for o in outcomes.values()])
    print("options: actual = Table I calendar; uniform/winter/rolling = the paper's proposals (1)-(3)")

    actual = outcomes["actual"]
    # Rolling submissions remove the anticipation surges entirely.
    assert outcomes["rolling"].total_energy_mwh < actual.total_energy_mwh
    # Winter concentration moves load out of the hot, dirty summer months.
    assert outcomes["winter"].summer_energy_share < actual.summer_energy_share
    # At least one restructuring option improves peak power or emissions.
    assert any(
        outcomes[o].peak_monthly_power_kw < actual.peak_monthly_power_kw
        or outcomes[o].total_emissions_t < actual.total_emissions_t
        for o in ("uniform", "winter", "rolling")
    )
