"""FIG5 — Fig. 5: monthly energy use vs. number of conference deadlines, 2020-2021.

Paper claims: (a) energy use picks up *ahead of* months with a high
concentration of deadlines; (b) the pickup starting around Jan/Feb 2021 is
sharper than in the same period of 2020, with the deadline calendar the main
difference between the years.  The reproduction additionally generates a
rolling-submission counterfactual (same facility, same weather, no deadlines)
so the anticipation effect can be separated from the temperature confounder
the paper itself flags.
"""

import numpy as np

from benchmarks._report import print_header, print_rows
from repro.analysis.figures import fig5_energy_vs_deadlines


def test_bench_fig5_energy_vs_deadlines(benchmark, scenario):
    result = benchmark.pedantic(
        fig5_energy_vs_deadlines, args=(scenario,), rounds=2, iterations=1, warmup_rounds=0
    )

    print_header("Fig. 5 — monthly energy (MWh) vs. number of conference deadlines")
    print_rows(
        [
            {
                "month": label,
                "energy_mwh": float(result.monthly_energy_mwh[i]),
                "deadlines": int(result.deadlines_per_month[i]),
                "no_deadline_counterfactual_mwh": float(result.counterfactual_energy_mwh[i]),
                "deadline_uplift_mwh": float(result.deadline_uplift_mwh[i]),
            }
            for i, label in enumerate(result.month_labels)
        ]
    )
    print(f"mean deadline uplift                    = {float(np.mean(result.deadline_uplift_mwh)):.1f} MWh/month")
    print(f"corr(uplift, deadlines this+next month) = {result.uplift_vs_upcoming_deadlines_correlation:+.3f}")
    print(f"early-2021 vs early-2020 energy ratio   = {result.early_2021_vs_2020_ratio:.3f}  (paper: clearly > 1)")
    print(f"same-month corr(energy, deadlines)      = {result.same_month_correlation:+.3f}")

    assert result.anticipation_detected()
    assert float(np.mean(result.deadline_uplift_mwh)) > 0
    assert result.uplift_vs_upcoming_deadlines_correlation > 0.5
    assert result.early_2021_vs_2020_ratio > 1.0
