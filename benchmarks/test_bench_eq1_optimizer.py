"""EQ1 — the datacenter-level optimization of Eq. 1.

Paper framing: minimize facility energy E(q_d, q_s, p, c, ε) over the supply,
scheduling and control levers subject to an activity floor A ≥ α.  The
benchmark searches a small operating grid (policies x power caps x supply
fractions) on a fixed one-week job trace and reports the frontier: the best
feasible point should beat the status-quo (uncapped backfill, full supply)
without violating the activity floor — and points that do violate it
illustrate the paper's "perverse effects" warning.
"""

from benchmarks._report import print_header, print_rows
from repro.climate.weather import WeatherModel
from repro.cluster.cooling import CoolingModel
from repro.cluster.simulator import SimulationConfig
from repro.config import FacilityConfig
from repro.core.levers import OperatingPoint
from repro.core.objective import ActivityConstraint, ActivityKind, EnergyObjective, ObjectiveKind
from repro.core.optimizer import DatacenterOptimizer
from repro.grid.iso_ne import IsoNeLikeGrid
from repro.timeutils import SimulationCalendar
from repro.workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator

FACILITY = FacilityConfig(n_nodes=24, gpus_per_node=2)
HORIZON_H = 7 * 24.0

POINTS = [
    OperatingPoint(policy_name="backfill"),
    OperatingPoint(policy_name="backfill", power_cap_fraction=0.75),
    OperatingPoint(policy_name="energy-aware", power_cap_fraction=0.75),
    OperatingPoint(policy_name="energy-aware", power_cap_fraction=0.6),
    OperatingPoint(policy_name="carbon-aware", power_cap_fraction=0.75),
    OperatingPoint(policy_name="energy-aware", power_cap_fraction=0.75, supply_fraction=0.75),
]


def _build_problem():
    calendar = SimulationCalendar(2020, 2)
    weather = WeatherModel(seed=0).hourly_temperature_c(calendar)
    grid = IsoNeLikeGrid(calendar, seed=0)
    generator = SuperCloudTraceGenerator(SuperCloudTraceConfig(facility=FACILITY), seed=5)
    jobs = generator.generate_jobs(n_jobs=180, horizon_h=5 * 24.0)

    baseline_optimizer = DatacenterOptimizer(
        FACILITY,
        EnergyObjective(ObjectiveKind.FACILITY_ENERGY_KWH),
        ActivityConstraint(ActivityKind.DELIVERED_GPU_HOURS, alpha=0.0),
        simulation_config=SimulationConfig(horizon_h=HORIZON_H),
        weather_hourly_c=weather,
        cooling=CoolingModel(),
        grid=grid,
    )
    baseline = baseline_optimizer.evaluate_point(OperatingPoint(policy_name="backfill"), jobs)
    alpha = 0.9 * baseline.result.delivered_gpu_hours
    optimizer = DatacenterOptimizer(
        FACILITY,
        EnergyObjective(ObjectiveKind.FACILITY_ENERGY_KWH),
        ActivityConstraint(ActivityKind.DELIVERED_GPU_HOURS, alpha=alpha),
        simulation_config=SimulationConfig(horizon_h=HORIZON_H),
        weather_hourly_c=weather,
        cooling=CoolingModel(),
        grid=grid,
    )
    return optimizer, jobs, alpha


def test_bench_eq1_operating_point_search(benchmark):
    optimizer, jobs, alpha = _build_problem()
    outcome = benchmark.pedantic(
        lambda: optimizer.optimize(jobs, POINTS), rounds=1, iterations=1, warmup_rounds=0
    )

    print_header("Eq. 1 — operating-point search (minimise facility kWh s.t. delivered GPU-h >= alpha)")
    print(f"activity floor alpha = {alpha:.0f} delivered GPU-hours (90% of status quo)")
    print_rows(outcome.frontier_records())
    assert outcome.best is not None
    print(f"best feasible point : {outcome.best.point.label()}")
    print(f"objective savings vs status quo : {100 * outcome.savings_vs_baseline():.1f}%")

    # The search must find a feasible point at least as good as the baseline,
    # and power caps should be part of the winning configuration.
    assert outcome.savings_vs_baseline() >= 0.0
    assert outcome.best.evaluation.feasible
    assert any(
        e.point.power_cap_fraction is not None and e.evaluation.feasible for e in outcome.evaluated
    )
