"""CLAIM-COOLING — optimized cooling control (Section IV.C / DeepMind [29]).

Paper claim: ML-optimized datacenter cooling cut Google's cooling energy by
~40% and PUE overhead by ~15% relative to the incumbent controller.  The
benchmark compares the conservatively tuned fixed-set-point plant against the
weather-following optimized controller over a simulated year of SuperCloud-like
IT load and Boston-like weather.
"""

import numpy as np

from benchmarks._report import print_header, print_rows
from repro.climate.weather import WeatherModel
from repro.cluster.cooling import FixedOverheadCooling, OptimizedCoolingController
from repro.timeutils import SimulationCalendar
from repro.workloads.demand import DeadlineDemandModel
from repro.workloads.supercloud import SuperCloudTraceGenerator


def _annual_comparison():
    calendar = SimulationCalendar(2020, 12)
    weather = WeatherModel(seed=0).hourly_temperature_c(calendar)
    generator = SuperCloudTraceGenerator(demand_model=DeadlineDemandModel(seed=0), seed=0)
    occupancy = generator.demand_model.hourly_occupancy(calendar)
    it_power_w = generator.it_power_from_occupancy(occupancy)

    fixed = FixedOverheadCooling()
    optimized = OptimizedCoolingController()
    fixed_cooling_mwh = float(np.sum(fixed.cooling_power_w(it_power_w, weather))) / 1e6
    optimized_cooling_mwh = float(np.sum(optimized.cooling_power_w(it_power_w, weather))) / 1e6
    return {
        "it_energy_mwh": float(np.sum(it_power_w)) / 1e6,
        "fixed_cooling_mwh": fixed_cooling_mwh,
        "optimized_cooling_mwh": optimized_cooling_mwh,
        "cooling_reduction_pct": 100 * (1 - optimized_cooling_mwh / fixed_cooling_mwh),
        "fixed_mean_pue": float(np.mean(fixed.pue(weather))),
        "optimized_mean_pue": float(np.mean(optimized.pue(weather))),
    }


def test_bench_cooling_optimization(benchmark):
    result = benchmark.pedantic(_annual_comparison, rounds=1, iterations=1, warmup_rounds=0)

    print_header("Optimized vs. fixed-set-point cooling over a simulated year")
    print_rows([result])
    pue_reduction = 100 * (1 - result["optimized_mean_pue"] / result["fixed_mean_pue"])
    print(f"cooling energy reduction : {result['cooling_reduction_pct']:.1f}%   (paper/DeepMind: ~40%)")
    print(f"mean PUE reduction       : {pue_reduction:.1f}%   (paper/DeepMind: ~15%)")

    # Shape: double-digit cooling-energy reduction and a PUE reduction of the
    # order of 10-25%, with the optimized controller never worse.
    assert 25.0 < result["cooling_reduction_pct"] < 75.0
    assert 8.0 < pue_reduction < 30.0
    assert result["optimized_cooling_mwh"] < result["fixed_cooling_mwh"]
