"""FIG1 — Fig. 1: training-compute demand of notable A.I. systems over time.

Paper claim: compute used by notable systems grew with a ~2-year doubling time
until ~2012 and with a months-scale doubling time afterwards (the chart the
paper reproduces from OpenAI / The Economist to motivate the sustainability
problem).
"""

from benchmarks._report import print_header, print_rows
from repro.analysis.figures import fig1_compute_trends


def test_bench_fig1_compute_trends(benchmark):
    result = benchmark(fig1_compute_trends)

    print_header("Fig. 1 — AI training compute: per-era exponential fits")
    print_rows(
        [
            {
                "era": fit.era,
                "n_systems": fit.n_systems,
                "doubling_time_months": fit.doubling_time_months,
                "r_squared": fit.r_squared,
            }
            for fit in (result.pre2012_fit, result.modern_fit)
        ]
    )
    print(f"growth acceleration (modern / pre-2012 rate): {result.growth_acceleration:.1f}x")
    print("paper: ~24-month doubling before 2012, ~3.4-month doubling after (through 2018)")

    # Shape assertions: slow-then-fast growth with a large acceleration factor.
    assert result.pre2012_fit.doubling_time_months > 12.0
    assert result.modern_fit.doubling_time_months < 12.0
    assert result.growth_acceleration > 3.0
