"""CLAIM-WIND — 36-hour-ahead wind-power forecasting (Section IV.C / DeepMind [30]).

Paper claim: neural networks trained on weather forecasts and historical
turbine data can forecast wind-farm output 36 hours ahead, enabling day-ahead
delivery commitments and boosting the value of wind energy.  The benchmark
trains the ridge-over-lags+weather forecaster on a synthetic wind farm and
scores it against the persistence baseline at several horizons.
"""

from benchmarks._report import print_header, print_rows
from repro.forecasting.wind import WindForecastStudy


def test_bench_wind_forecasting(benchmark):
    study_36h = benchmark.pedantic(
        lambda: WindForecastStudy.run(n_hours=6000, horizon_h=36, seed=0),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    rows = []
    for horizon in (6, 12, 24, 36, 48):
        study = WindForecastStudy.run(n_hours=6000, horizon_h=horizon, seed=0)
        rows.append(
            {
                "horizon_h": horizon,
                "model_mae_mw": study.model_metrics.mae,
                "persistence_mae_mw": study.persistence_metrics.mae,
                "skill_vs_persistence": study.skill_vs_persistence,
            }
        )

    print_header("36 h-ahead wind-power forecasting vs. persistence (100 MW synthetic farm)")
    print_rows(rows)
    print("paper claim: 36 h-ahead forecasts are good enough to commit day-ahead deliveries;")
    print("the reproduction checks the learned forecaster clearly beats persistence at 36 h.")

    assert study_36h.skill_vs_persistence > 0.15
    assert study_36h.model_metrics.mae < study_36h.persistence_metrics.mae
    # Persistence degrades with horizon much faster than the learned model.
    by_horizon = {r["horizon_h"]: r for r in rows}
    assert by_horizon[36]["skill_vs_persistence"] > by_horizon[6]["skill_vs_persistence"] - 0.05
