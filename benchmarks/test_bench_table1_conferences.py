"""TAB1 — Table I: the conference catalogue used by the Fig. 5 analysis.

Paper content: a list of notable conferences by area (NLP/Speech, Computer
Vision, Robotics, General ML, Data Mining) whose deadlines are counted per
month; the surrounding text notes that "many deadlines tend to concentrate in
the spring/summer".
"""

from benchmarks._report import print_header, print_rows
from repro.analysis.tables import table1_conferences
from repro.timeutils import MONTH_ABBREVIATIONS


def test_bench_table1_conferences(benchmark):
    result = benchmark(table1_conferences)

    print_header("Table I — notable conferences considered for the deadline analysis")
    print(result.as_markdown())
    print()
    print_rows(
        [
            {"month": MONTH_ABBREVIATIONS[m], "deadlines": int(result.deadlines_by_month_of_year[m])}
            for m in range(12)
        ]
    )
    print(f"total venues                 : {result.n_conferences}")
    print(f"spring/summer deadline share : {result.spring_summer_fraction:.0%} (paper: the clear majority)")
    print(f"winter deadline share        : {result.winter_fraction:.0%}")

    assert result.n_conferences >= 40
    assert set(result.rows) == {"NLP/Speech", "Computer Vision", "Robotics", "General ML", "Data Mining"}
    assert result.spring_summer_fraction > result.winter_fraction
