"""FIG4 — Fig. 4: monthly facility power vs. monthly mean outdoor temperature.

Paper claim: there is a "near one-to-one, monotonic relationship" between the
monthly average temperature and the monthly average power consumption, because
warmer months force the cooling plant to work harder.
"""

from benchmarks._report import print_header, print_rows
from repro.analysis.figures import fig4_power_vs_temperature


def test_bench_fig4_power_vs_temperature(benchmark, scenario):
    result = benchmark.pedantic(
        fig4_power_vs_temperature, args=(scenario,), rounds=3, iterations=1, warmup_rounds=0
    )

    print_header("Fig. 4 — monthly average power (kW) vs. monthly mean temperature (F)")
    print_rows(
        [
            {
                "month": label,
                "avg_power_kw": float(result.monthly_power_kw[i]),
                "temperature_f": float(result.monthly_temperature_f[i]),
            }
            for i, label in enumerate(result.month_labels)
        ]
    )
    print(f"Pearson correlation  = {result.pearson:+.3f}")
    print(f"Spearman correlation = {result.spearman:+.3f}  (paper: 'near one-to-one, monotonic')")

    assert result.spearman > 0.8
    assert result.pearson > 0.8
    assert result.is_near_one_to_one()
