#!/usr/bin/env python
"""Compress pytest-benchmark JSON dumps into a perf-trajectory baseline.

The committed ``BENCH_<n>.json`` files at the repo root track how the
toolkit's wall times move across PRs.  Each merges one or more
pytest-benchmark output documents — the simulator-scale ladder, the cached
campaign re-sweep, ... — boiled down to the stats that matter for trend
reading (min/mean/stddev/rounds per benchmark), plus the machine context
needed to compare like with like.  Source files are recovered from each
benchmark's ``fullname``, so the ``source`` field lists every contributing
benchmark module.

Usage::

    python -m pytest benchmarks/test_bench_simulator_scale.py -q \\
        --benchmark-json=bench-simulator-scale.json
    python -m pytest benchmarks/test_bench_campaign.py -q \\
        --benchmark-json=bench-campaign.json
    python benchmarks/make_trajectory.py \\
        bench-simulator-scale.json bench-campaign.json BENCH_9.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def compact(raws: list[dict]) -> dict:
    """The merged trajectory view of one or more pytest-benchmark documents."""
    machine: dict = {}
    sources: list[str] = []
    benchmarks: list[dict] = []
    for raw in raws:
        machine = machine or raw.get("machine_info", {})
        for bench in raw.get("benchmarks", []):
            source = str(bench.get("fullname", "")).split("::")[0]
            if source and source not in sources:
                sources.append(source)
            benchmarks.append(
                {
                    "name": bench["name"],
                    "min_s": bench["stats"]["min"],
                    "mean_s": bench["stats"]["mean"],
                    "stddev_s": bench["stats"]["stddev"],
                    "rounds": bench["stats"]["rounds"],
                }
            )
    return {
        "source": sorted(sources),
        "python": machine.get("python_version"),
        "cpu": machine.get("cpu", {}).get("brand_raw"),
        "benchmarks": sorted(benchmarks, key=lambda b: b["name"]),
    }


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(
            f"usage: {argv[0]} <pytest-benchmark.json> [<more.json> ...] <trajectory.json>",
            file=sys.stderr,
        )
        return 2
    raws = [json.loads(Path(path).read_text()) for path in argv[1:-1]]
    trajectory = compact(raws)
    Path(argv[-1]).write_text(json.dumps(trajectory, indent=2) + "\n")
    print(
        f"wrote {argv[-1]} ({len(trajectory['benchmarks'])} benchmarks "
        f"from {len(raws)} input file(s))"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
