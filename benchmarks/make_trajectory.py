#!/usr/bin/env python
"""Compress a pytest-benchmark JSON dump into a perf-trajectory baseline.

The committed ``BENCH_<n>.json`` files at the repo root track how the
simulator core's wall times move across PRs.  Each is the pytest-benchmark
output of ``benchmarks/test_bench_simulator_scale.py`` boiled down to the
stats that matter for trend reading (min/mean/stddev/rounds per benchmark),
plus the machine context needed to compare like with like.

Usage::

    python -m pytest benchmarks/test_bench_simulator_scale.py -q \\
        --benchmark-json=bench-simulator-scale.json
    python benchmarks/make_trajectory.py bench-simulator-scale.json BENCH_7.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def compact(raw: dict) -> dict:
    """The trajectory view of one pytest-benchmark JSON document."""
    machine = raw.get("machine_info", {})
    return {
        "source": "benchmarks/test_bench_simulator_scale.py",
        "python": machine.get("python_version"),
        "cpu": machine.get("cpu", {}).get("brand_raw"),
        "benchmarks": [
            {
                "name": bench["name"],
                "min_s": bench["stats"]["min"],
                "mean_s": bench["stats"]["mean"],
                "stddev_s": bench["stats"]["stddev"],
                "rounds": bench["stats"]["rounds"],
            }
            for bench in sorted(raw.get("benchmarks", []), key=lambda b: b["name"])
        ],
    }


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(f"usage: {argv[0]} <pytest-benchmark.json> <trajectory.json>", file=sys.stderr)
        return 2
    raw = json.loads(Path(argv[1]).read_text())
    Path(argv[2]).write_text(json.dumps(compact(raw), indent=2) + "\n")
    print(f"wrote {argv[2]} ({len(compact(raw)['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
