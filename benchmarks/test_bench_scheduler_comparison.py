"""ABL-SCHED — scheduling-policy ablation on identical traces.

Not a figure of the paper, but the ablation its framework implies: run the
same one-week SuperCloud-like job trace under FIFO, backfill, energy-aware
(caps + packing + budget) and carbon-aware (deferral + dirty-hour caps)
policies with identical weather and grid, and compare energy, emissions, cost
and service quality.  This is where the paper's caveat shows up concretely:
on a low-renewable grid with an idle-power-dominated facility, deferral alone
buys little — system-side caps and demand-side/purchasing measures need to be
combined (Sections II.A + II.C together, "a concerted, unified effort").
"""

from benchmarks._report import print_header, print_rows
from repro.climate.weather import WeatherModel
from repro.cluster.cooling import CoolingModel
from repro.cluster.resources import Cluster
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.config import FacilityConfig
from repro.grid.iso_ne import IsoNeLikeGrid
from repro.scheduler.backfill import BackfillScheduler
from repro.scheduler.carbon_aware import CarbonAwareScheduler
from repro.scheduler.deadline_aware import DeadlineAwareScheduler
from repro.scheduler.energy_aware import EnergyAwareScheduler
from repro.scheduler.fifo import FifoScheduler
from repro.timeutils import SimulationCalendar
from repro.workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator

FACILITY = FacilityConfig(n_nodes=24, gpus_per_node=2)


def _build_world():
    calendar = SimulationCalendar(2020, 2)
    weather = WeatherModel(seed=0).hourly_temperature_c(calendar)
    grid = IsoNeLikeGrid(calendar, seed=0)
    generator = SuperCloudTraceGenerator(SuperCloudTraceConfig(facility=FACILITY), seed=7)
    jobs = generator.generate_jobs(n_jobs=200, horizon_h=5 * 24.0, deferrable_fraction=0.5)
    return weather, grid, jobs


def _run_all(weather, grid, jobs):
    schedulers = (
        FifoScheduler(),
        BackfillScheduler(),
        EnergyAwareScheduler(),
        CarbonAwareScheduler(),
        DeadlineAwareScheduler(),
    )
    results = []
    for scheduler in schedulers:
        simulator = ClusterSimulator(
            Cluster(FACILITY),
            scheduler,
            SimulationConfig(horizon_h=7 * 24.0),
            weather_hourly_c=weather,
            cooling=CoolingModel(),
            grid=grid,
        )
        results.append(simulator.run([job.clone_pending() for job in jobs]))
    return results


def test_bench_scheduler_comparison(benchmark):
    weather, grid, jobs = _build_world()
    results = benchmark.pedantic(
        lambda: _run_all(weather, grid, jobs), rounds=1, iterations=1, warmup_rounds=0
    )

    print_header("Scheduler ablation — identical one-week trace, weather and grid")
    print_rows(
        [
            {
                "scheduler": r.scheduler_name,
                "facility_energy_kwh": r.facility_energy_kwh,
                "emissions_kg": r.total_emissions_kg,
                "cost_usd": r.total_cost_usd,
                "energy_per_gpu_hour_kwh": r.energy_per_gpu_hour_kwh,
                "completed_jobs": r.completed_jobs,
                "mean_wait_h": r.mean_wait_h,
                "p95_wait_h": r.p95_wait_h,
            }
            for r in results
        ]
    )
    print("reading: energy-aware (caps + packing) wins on energy per delivered GPU-hour at a small")
    print("wait-time cost; pure carbon-aware deferral trades extra wait for little emission gain on")
    print("this grid — it needs to be paired with purchasing/load-shaping (Section II.A).")

    by_name = {r.scheduler_name: r for r in results}
    fifo, backfill = by_name["fifo"], by_name["backfill"]
    energy_aware = by_name["energy-aware"]
    # All policies deliver the same completed work on this under-subscribed trace.
    delivered = {round(r.delivered_gpu_hours, 2) for r in results}
    assert len(delivered) == 1
    # Backfill should not be slower than FIFO for users.
    assert backfill.mean_wait_h <= fifo.mean_wait_h + 1e-6
    # The energy-aware policy is the most energy-efficient per delivered GPU-hour.
    assert energy_aware.energy_per_gpu_hour_kwh <= min(
        r.energy_per_gpu_hour_kwh for r in results
    ) + 1e-9
    # And its wait-time cost stays moderate (activity constraint intact).
    assert energy_aware.mean_wait_h <= backfill.mean_wait_h + 2.0
