"""FIG3 — Fig. 3: monthly average LMP vs. monthly solar+wind share.

Paper claim: monthly real-time prices (south-eastern/central MA LMPs) sit
roughly in the $20-50/MWh band and are lowest ($20-25) in the spring months
when the renewable share is highest — shifting purchases into green windows is
therefore also financially attractive.
"""

from benchmarks._report import print_header, print_rows
from repro.analysis.figures import fig3_price_vs_green_share


def test_bench_fig3_price_vs_green_share(benchmark, scenario):
    result = benchmark.pedantic(
        fig3_price_vs_green_share, args=(scenario,), rounds=3, iterations=1, warmup_rounds=0
    )

    print_header("Fig. 3 — monthly average LMP ($/MWh) vs. % of energy from solar+wind")
    print_rows(
        [
            {
                "month": label,
                "price_per_mwh": float(result.monthly_price_per_mwh[i]),
                "solar_wind_pct": float(result.monthly_renewable_share_pct[i]),
            }
            for i, label in enumerate(result.month_labels)
        ]
    )
    print(f"correlation(price, green share) = {result.correlation:+.3f}  (paper: negative)")
    print(f"monthly price range             = ${result.price_range[0]:.1f} - ${result.price_range[1]:.1f} /MWh (paper: ~$20-50)")
    print(f"cheapest month                  = {result.cheapest_month} (paper: Feb-May)")
    print(f"green-month discount            = {result.spring_discount():+.1f} $/MWh")

    assert result.correlation < -0.2
    assert result.spring_discount() < 0
    assert 15.0 < result.price_range[0] < 35.0
    assert 35.0 < result.price_range[1] < 60.0
    assert result.cheapest_month.split()[0] in {"Feb", "Mar", "Apr", "May"}
