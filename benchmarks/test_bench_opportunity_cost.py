"""CLAIM-SHIFT (companion) — the opportunity-cost accounting of Section II.A.

Paper framing: buying dirty power now forgoes the greener (and usually
cheaper) power available at other times — an *opportunity cost* on top of the
bill.  The benchmark quantifies that head-room for the simulated facility's
2020-2021 consumption profile across deferral windows and flexibility levels,
which is the number an operator would use to decide whether the shifting
machinery is worth building.
"""

from benchmarks._report import print_header, print_rows
from repro.core.opportunity_cost import opportunity_cost_of_profile


def test_bench_opportunity_cost(benchmark, scenario):
    load_kwh = scenario.load_trace.facility_power_w / 1e3

    def sweep():
        rows = []
        for window_h in (6, 24, 168):
            for fraction in (0.2, 0.4):
                report = opportunity_cost_of_profile(
                    load_kwh, scenario.grid, deferrable_fraction=fraction, window_h=window_h
                )
                rows.append(dict(report.summary()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)

    print_header("Section II.A — avoidable (opportunity) emissions and spend by flexibility")
    print_rows(rows)
    print("reading: longer shifting windows and more deferrable load capture more of the")
    print("foregone green/cheap energy; the weekly window approaches the seasonal effect in Fig. 2/3.")

    assert all(row["avoidable_emissions_pct"] >= 0 for row in rows)
    assert all(row["avoidable_cost_pct"] >= 0 for row in rows)
    # A weekly window with 40% flexibility captures more than a 6 h window with 20%.
    first = rows[0]
    last = rows[-1]
    assert last["avoidable_emissions_pct"] >= first["avoidable_emissions_pct"]
    assert last["avoidable_cost_pct"] >= first["avoidable_cost_pct"]
