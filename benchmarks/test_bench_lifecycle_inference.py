"""CLAIM-INFER — inference dominates the model life-cycle (Section IV.B).

Paper claims (citing AWS/Google figures): inference accounts for ~90% of
production ML infrastructure cost and 80-90% of energy; serving fleets run at
poor GPU utilization (AWS p3 instances at 10-30%, TPUs at 28% average) because
online queries cannot exploit training's batch parallelism.  The benchmark
builds a representative production model (training + experimentation +
year-long serving) and reports the life-cycle split and fleet utilization.
"""

from benchmarks._report import print_header, print_rows
from repro.tracking.lifecycle import LifecycleCostModel
from repro.workloads.inference import InferenceWorkloadSpec
from repro.workloads.training import TrainingJobSpec


def _model() -> LifecycleCostModel:
    return LifecycleCostModel(
        TrainingJobSpec(name="prod-recommender", single_gpu_hours=600.0, gpu_model="V100"),
        InferenceWorkloadSpec(name="prod-serving", mean_queries_per_s=900.0, gpu_model="T4"),
        development_multiplier=4.0,
        training_gpus=16,
        seed=0,
    )


def test_bench_lifecycle_inference_share(benchmark):
    model = _model()
    breakdown = benchmark.pedantic(lambda: model.breakdown(365.0), rounds=1, iterations=1, warmup_rounds=0)

    print_header("Model life-cycle energy split (1-year deployment)")
    print_rows(
        [
            {
                "stage": stage,
                "energy_kwh": kwh,
                "share_pct": 100 * share,
            }
            for stage, kwh, share in (
                ("development/search", breakdown.development_kwh, breakdown.development_share),
                ("final training run", breakdown.training_kwh, breakdown.training_share),
                ("inference (365 d)", breakdown.inference_kwh, breakdown.inference_share),
            )
        ]
    )
    print_rows(
        [
            {
                "deployment_days": days,
                "inference_share_pct": 100 * share,
            }
            for days, share in _model().inference_share_vs_lifetime((30.0, 90.0, 180.0, 365.0, 730.0)).items()
        ]
    )
    print(f"serving-fleet mean utilization : {breakdown.inference_mean_utilization:.0%} (paper: 10-30%)")
    print(f"training utilization           : {breakdown.training_utilization:.0%}")
    print("paper claim: inference is 80-90% of energy; utilization of serving GPUs is poor.")

    assert 0.6 < breakdown.inference_share < 0.98
    assert breakdown.inference_mean_utilization < 0.45
    assert breakdown.inference_mean_utilization < breakdown.training_utilization
    shares = _model().inference_share_vs_lifetime((30.0, 365.0, 730.0))
    assert shares[730.0] > shares[30.0]
