"""CLAIM-CAMPAIGN — the campaign layer makes sweep-shaped questions one-liners.

The paper's results are all sweeps (power-cap fractions, operating-point
grids, stress batteries, policy comparisons).  This benchmark times a
multi-scenario campaign — two experiments over a seed × horizon grid —
through the declarative campaign API and checks its core guarantees: the
expansion is reproducibly seeded, serial and multi-process execution return
identical rows, and worker-local sessions build each distinct world's
substrates exactly once.

CLAIM-CAMPAIGN-CACHE — against a content-addressed artifact store the same
sweep becomes incremental: the cached re-sweep benchmark times a warm run
(every point served from disk, zero simulator executions) and gates it
against the cold run that populated the store.
"""

import time

from benchmarks._report import print_header, print_rows
from repro.experiments import CampaignSpec, run_campaign
from repro.experiments.campaign import _WORKER_SESSIONS, clear_worker_sessions
from repro.parallel import ParallelConfig

CAMPAIGN = CampaignSpec(
    experiments=("table1", "powercap"),
    scenario_grid={"seed": [0, 1], "n_months": [3, 4]},
)


def test_bench_campaign_sweep(benchmark):
    result = benchmark(lambda: run_campaign(CAMPAIGN))

    print_header("Campaign — 2 experiments x (2 seeds x 2 horizons)")
    summary = result.summarize("experiment")
    columns: list[str] = []
    for record in summary:
        columns.extend(key for key in record if key not in columns)
    print_rows([{key: record.get(key, "-") for key in columns} for record in summary])

    assert len(result) == 8
    assert [p.index for p in result.points] == list(range(8))
    # Reproducibly seeded expansion: a re-expansion yields the same points.
    assert [p.seed for p in CAMPAIGN.expand()] == [p.seed for p in result.points]

    # Serial and multi-process execution produce identical rows.
    parallel = run_campaign(CAMPAIGN, ParallelConfig(n_workers=2, min_tasks_for_processes=2))
    assert parallel.rows == result.rows

    # One session per distinct world, shared across experiments (serial path).
    clear_worker_sessions()
    run_campaign(CAMPAIGN)
    assert len(_WORKER_SESSIONS) == 4  # 2 seeds x 2 horizons
    clear_worker_sessions()

    print("claim: any 'N experiments x M worlds' sweep is one declarative object")


def test_bench_campaign_cached_resweep(benchmark, tmp_path):
    from repro.artifacts import ArtifactStore

    store = ArtifactStore(tmp_path / "cache")

    clear_worker_sessions()  # make the cold run pay full substrate cost
    start = time.perf_counter()
    cold = run_campaign(CAMPAIGN, store=store)
    cold_s = time.perf_counter() - start
    assert (cold.cache_hits, cold.cache_misses) == (0, 8)

    warm = benchmark(lambda: run_campaign(CAMPAIGN, store=store))
    assert (warm.cache_hits, warm.cache_misses) == (8, 0)
    assert warm.to_csv() == cold.to_csv()  # byte-identical rows

    start = time.perf_counter()
    run_campaign(CAMPAIGN, store=store)
    warm_s = time.perf_counter() - start

    print_header("Campaign — cold sweep vs cached re-sweep (8 points)")
    print_rows(
        [
            {"run": "cold", "seconds": f"{cold_s:.3f}", "cached": 0, "simulated": 8},
            {"run": "warm", "seconds": f"{warm_s:.3f}", "cached": 8, "simulated": 0},
        ]
    )
    assert warm_s < cold_s, f"cached re-sweep ({warm_s:.3f}s) not faster than cold ({cold_s:.3f}s)"
    print("claim: an unchanged re-sweep is pure disk reads — zero simulator executions")
