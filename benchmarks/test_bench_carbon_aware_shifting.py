"""CLAIM-SHIFT — carbon/price-aware temporal shifting of load and purchases (Section II.A).

Paper proposal: exploit the mismatch between the facility's consumption and
the grid's green/cheap windows by (1) shifting utilization into those windows
or (2) storing energy bought in them.  The benchmark evaluates both:

* hourly *load shifting* of a deferrable fraction of the facility profile
  (ablation over the deferrable fraction — the design choice DESIGN.md calls
  out), and
* *purchasing strategies* backed by a battery (green-window, price-threshold,
  combined) against buy-as-you-consume.
"""

import numpy as np

from benchmarks._report import print_header, print_rows
from repro.core.policies import LoadShiftingPolicy, evaluate_load_shifting
from repro.grid.purchasing import (
    BaselinePurchasing,
    GreenWindowPurchasing,
    PriceThresholdPurchasing,
    StorageBackedPurchasing,
    evaluate_purchasing_strategy,
)
from repro.grid.storage import BatteryStorage, StorageConfig


def _shifting_rows(scenario):
    load_kwh = scenario.load_trace.facility_power_w / 1e3
    rows = []
    for fraction in (0.1, 0.3, 0.5):
        for signal in ("carbon", "price"):
            outcome = evaluate_load_shifting(
                facility_load_kwh=load_kwh,
                grid=scenario.grid,
                policy=LoadShiftingPolicy(deferrable_fraction=fraction, window_h=24, signal=signal),
            )
            rows.append(
                {
                    "deferrable_fraction": fraction,
                    "signal": signal,
                    "emissions_savings_pct": 100 * outcome.emissions_savings_fraction,
                    "cost_savings_pct": 100 * outcome.cost_savings_fraction,
                }
            )
    return rows


def test_bench_load_shifting(benchmark, scenario):
    rows = benchmark.pedantic(lambda: _shifting_rows(scenario), rounds=1, iterations=1, warmup_rounds=0)

    print_header("Section II.A — carbon/price-aware load shifting (24 h windows)")
    print_rows(rows)
    print("paper claim: shifting consumption into green/cheap hours reduces the environmental")
    print("opportunity cost and the bill; more deferrable load captures more of it.")

    carbon_rows = [r for r in rows if r["signal"] == "carbon"]
    price_rows = [r for r in rows if r["signal"] == "price"]
    assert all(r["emissions_savings_pct"] > 0 for r in carbon_rows)
    assert all(r["cost_savings_pct"] > 0 for r in price_rows)
    # More flexibility -> more savings (monotone in the deferrable fraction).
    assert carbon_rows[-1]["emissions_savings_pct"] >= carbon_rows[0]["emissions_savings_pct"]
    assert price_rows[-1]["cost_savings_pct"] >= price_rows[0]["cost_savings_pct"]


def test_bench_purchasing_strategies(benchmark, scenario):
    grid = scenario.grid
    demand_kwh = scenario.load_trace.facility_power_w / 1e3

    def evaluate_all():
        series = dict(
            hours=grid.hours,
            demand_kwh=demand_kwh,
            prices_per_mwh=grid.price_per_mwh,
            renewable_share=grid.renewable_share,
            carbon_intensity_g_per_kwh=grid.carbon_intensity_g_per_kwh,
        )
        storage = lambda: BatteryStorage(StorageConfig(capacity_kwh=4000.0, max_charge_kw=1000.0, max_discharge_kw=1000.0))
        strategies = (
            BaselinePurchasing(),
            GreenWindowPurchasing(storage()),
            PriceThresholdPurchasing(storage()),
            StorageBackedPurchasing(storage()),
        )
        return [evaluate_purchasing_strategy(s, **series) for s in strategies]

    outcomes = benchmark.pedantic(evaluate_all, rounds=1, iterations=1, warmup_rounds=0)

    print_header("Section II.A — storage-backed energy-purchasing strategies (2020-2021)")
    print_rows(
        [
            {
                "strategy": o.strategy_name,
                "avg_price_paid_per_mwh": o.average_price_paid_per_mwh,
                "emissions_g_per_kwh_demand": o.emissions_per_kwh_demand,
                "green_share_of_purchases_pct": 100 * o.weighted_renewable_share,
                "storage_losses_mwh": o.storage_losses_kwh / 1e3,
            }
            for o in outcomes
        ]
    )
    print("note: with an ISO-NE-like (gas-marginal) mix, price arbitrage pays clearly while")
    print("carbon arbitrage through a battery is nearly offset by round-trip losses — the")
    print("load-shifting table above is the stronger carbon lever, matching the paper's")
    print("'no single change on one level suffices' point.")

    baseline, green, price, combined = outcomes
    assert price.average_price_paid_per_mwh < baseline.average_price_paid_per_mwh
    assert green.weighted_renewable_share > baseline.weighted_renewable_share
    assert combined.storage_losses_kwh <= green.storage_losses_kwh
