"""EQ2 — the per-user mechanism of Eq. 2 / Section II.C.

Paper proposal: a two-part mechanism with a fixed power-cap baseline and a
voluntary menu "accept stricter caps, receive more GPUs".  The benchmark
offers the default menu to a heterogeneous synthetic user population and
reports system energy, completion times and participation versus the
no-mechanism baseline, plus an ablation over the population's green-preference
share (the design choice DESIGN.md calls out).
"""

from benchmarks._report import print_header, print_rows
from repro.core.mechanism import TwoPartMechanism


def _evaluate(green_fraction: float, n_users: int = 120):
    mechanism = TwoPartMechanism()
    population = TwoPartMechanism.synthetic_population(
        n_users, green_fraction=green_fraction, seed=42
    )
    return mechanism.evaluate_population(population)


def test_bench_eq2_two_part_mechanism(benchmark):
    outcome = benchmark.pedantic(
        lambda: _evaluate(green_fraction=0.4), rounds=1, iterations=1, warmup_rounds=0
    )

    print_header("Eq. 2 — two-part mechanism: caps-for-GPUs menu vs. no mechanism")
    rows = []
    for green_fraction in (0.0, 0.2, 0.4, 0.8):
        result = _evaluate(green_fraction)
        rows.append(
            {
                "green_user_share": green_fraction,
                "participation_pct": 100 * result.participation_rate,
                "energy_savings_pct": 100 * result.energy_savings_fraction,
                "mean_time_change_pct": 100 * result.mean_time_change_fraction,
                "extra_gpu_hours": result.extra_gpu_hours,
            }
        )
    print_rows(rows)
    print("paper claim: caps control energy 'with minimal impact on training speed and user experience',")
    print("and the variable component lets users scale savings further by choice.")

    # Shape: the mechanism saves energy, does not slow users down on average,
    # and achieves meaningful voluntary participation.
    assert outcome.energy_savings_fraction > 0.02
    assert outcome.mean_time_change_fraction <= 0.01
    assert outcome.participation_rate > 0.3
    # Greener populations participate at least as much.
    assert rows[-1]["participation_pct"] >= rows[0]["participation_pct"]
