"""PERF-SIM-SCALE — the simulator-core scale ladder (small ... xlarge / fleet).

Every experiment in the reproduction bottoms out in ``ClusterSimulator.run``,
so its speed bounds how many scenarios a campaign can afford.  This benchmark
times the incremental array-backed core on four site sizes:

* **small** — 16 nodes x 4 GPUs, 500 jobs, one week;
* **medium** — 64 nodes x 4 GPUs, 2 000 jobs, 28 days (the profiled workload
  from the perf issue: 11.5 M Python calls and ~4.6 s of profile time on the
  scan-based core);
* **large** — the registered ``supercloud-large`` scenario's facility
  (256 nodes x 8 A100s), 4 000 jobs, 28 days;
* **xlarge** — the registered ``supercloud-xlarge`` scenario's facility
  (1024 nodes x 8 A100s, 8 192 GPUs — the top rung of the scale ladder),
  8 000 jobs, 28 days.

It also proves the headroom directly: the pre-refactor scan-based cluster
(whole-cluster ``refresh_state`` sweeps, per-query free-list rebuilds, full
rescans for IT power) is embedded below verbatim and run through the same
event loop on the medium workload.  The incremental core must beat it by at
least 5x while producing bit-identical job records.

Two **fleet** tiers gate the multi-site co-simulation layer:

* **lockstep overhead** — stepping a 3x ``supercloud-small`` fleet in hourly
  lockstep (routing included) must cost at most 1.3x the summed wall time of
  running each member site standalone on its assigned jobs, with bit-identical
  per-site job records;
* **parallel speedup** — stepping the 4-site ``quad-climate-medium`` fleet
  with per-site simulators on worker processes must produce records
  bit-identical to the serial in-process loop, and on a machine with at least
  4 usable cores it must run at least 2x faster than serial.
"""

from __future__ import annotations

import enum
import itertools
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np
import pytest

from benchmarks._report import print_header, print_rows
from repro.climate.weather import WeatherModel
from repro.cluster.cooling import CoolingModel
from repro.cluster.resources import Cluster
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.config import FacilityConfig
from repro.errors import ResourceError
from repro.experiments.spec import get_scenario
from repro.grid.iso_ne import IsoNeLikeGrid
from repro.scheduler.backfill import BackfillScheduler
from repro.timeutils import SimulationCalendar
from repro.workloads.demand import DeadlineDemandModel
from repro.workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator

SEED = 0
HORIZON_28D = 28 * 24.0

LARGE_SCENARIO = get_scenario("supercloud-large")
XLARGE_SCENARIO = get_scenario("supercloud-xlarge")

#: tier -> (facility, gpu_model, n_jobs, horizon_h)
TIERS: dict[str, tuple[FacilityConfig, str, int, float]] = {
    "small": (FacilityConfig(n_nodes=16, gpus_per_node=4), "V100", 500, 7 * 24.0),
    "medium": (FacilityConfig(n_nodes=64, gpus_per_node=4), "V100", 2000, HORIZON_28D),
    "large": (LARGE_SCENARIO.facility, LARGE_SCENARIO.workload.gpu_model, 4000, HORIZON_28D),
    "xlarge": (
        XLARGE_SCENARIO.facility,
        XLARGE_SCENARIO.workload.gpu_model,
        8000,
        HORIZON_28D,
    ),
}


def _build_world(tier: str):
    facility, gpu_model, n_jobs, horizon_h = TIERS[tier]
    calendar = SimulationCalendar(start_year=2020, n_months=2)
    weather = WeatherModel(seed=SEED).hourly_temperature_c(calendar)
    grid = IsoNeLikeGrid(calendar, seed=SEED)
    generator = SuperCloudTraceGenerator(
        SuperCloudTraceConfig(facility=facility, gpu_model=gpu_model),
        demand_model=DeadlineDemandModel(seed=SEED),
        seed=SEED,
    )
    jobs = generator.generate_jobs(n_jobs=n_jobs, horizon_h=horizon_h)
    return facility, gpu_model, weather, grid, jobs, horizon_h


@pytest.fixture(scope="module")
def worlds():
    return {tier: _build_world(tier) for tier in TIERS}


def _run(cluster, weather, grid, jobs, horizon_h):
    simulator = ClusterSimulator(
        cluster,
        BackfillScheduler(),
        SimulationConfig(horizon_h=horizon_h),
        weather_hourly_c=weather,
        cooling=CoolingModel(),
        grid=grid,
    )
    return simulator.run([job.clone_pending() for job in jobs])


@pytest.mark.parametrize("tier", list(TIERS))
def test_bench_simulator_scale(benchmark, worlds, tier):
    facility, gpu_model, weather, grid, jobs, horizon_h = worlds[tier]
    result = benchmark.pedantic(
        lambda: _run(Cluster(facility, gpu_model=gpu_model), weather, grid, jobs, horizon_h),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    print_header(f"Simulator scale tier: {tier}")
    print_rows(
        [
            {
                "nodes": facility.n_nodes,
                "gpus": facility.total_gpus,
                "jobs": len(jobs),
                "horizon_d": horizon_h / 24.0,
                "completed": result.completed_jobs,
                "delivered_gpu_h": result.delivered_gpu_hours,
                "facility_energy_kwh": result.facility_energy_kwh,
            }
        ]
    )
    assert result.completed_jobs > 0.9 * len(jobs)
    assert result.facility_energy_kwh > 0


# ---------------------------------------------------------------------------
# The pre-refactor scan-based cluster, embedded verbatim as the speed baseline
# ---------------------------------------------------------------------------


@dataclass
class _LegacyGpu:
    node_id: int
    index: int
    allocated_job_id: Optional[str] = None
    power_limit_w: Optional[float] = None
    utilization: float = 0.0

    @property
    def is_free(self) -> bool:
        return self.allocated_job_id is None


class _LegacyNodeState(enum.Enum):
    IDLE = "idle"
    ACTIVE = "active"
    DRAINED = "drained"


@dataclass
class _LegacyNode:
    node_id: int
    gpus: list

    state: "_LegacyNodeState" = _LegacyNodeState.IDLE

    @property
    def free_gpus(self) -> list:
        if self.state is _LegacyNodeState.DRAINED:
            return []
        return [g for g in self.gpus if g.is_free]

    @property
    def n_free_gpus(self) -> int:
        return len(self.free_gpus)

    @property
    def is_occupied(self) -> bool:
        return any(not g.is_free for g in self.gpus)

    def refresh_state(self) -> None:
        if self.state is _LegacyNodeState.DRAINED:
            return
        self.state = _LegacyNodeState.ACTIVE if self.is_occupied else _LegacyNodeState.IDLE


class LegacyScanCluster:
    """The seed implementation's cluster: whole-cluster scans on every query."""

    def __init__(self, facility: FacilityConfig, gpu_model: str = "V100") -> None:
        from repro.telemetry.gpu_power import GpuPowerModel, get_gpu_spec

        self.facility = facility
        self.gpu_spec = get_gpu_spec(gpu_model)
        self.gpu_power_model = GpuPowerModel(self.gpu_spec)
        self.nodes = [
            _LegacyNode(
                node_id=node_id,
                gpus=[_LegacyGpu(node_id=node_id, index=i) for i in range(facility.gpus_per_node)],
            )
            for node_id in range(facility.n_nodes)
        ]
        self._allocations = {}

    @property
    def n_free_gpus(self) -> int:
        return sum(node.n_free_gpus for node in self.nodes)

    def can_fit(self, n_gpus: int) -> bool:
        if n_gpus <= 0:
            raise ResourceError(f"n_gpus must be positive, got {n_gpus!r}")
        return self.n_free_gpus >= n_gpus

    def iter_gpus(self):
        return itertools.chain.from_iterable(node.gpus for node in self.nodes)

    def allocate(self, job_id, n_gpus, *, utilization=1.0, power_limit_w=None, pack=True):
        from repro.cluster.resources import Allocation

        if job_id in self._allocations:
            raise ResourceError(f"job {job_id!r} already holds an allocation")
        if not self.can_fit(n_gpus):
            raise ResourceError(f"cannot allocate {n_gpus} GPUs")
        candidates = [node for node in self.nodes if node.n_free_gpus > 0]
        chosen = []
        if pack:
            candidates.sort(key=lambda node: (node.n_free_gpus, node.node_id))
            for node in candidates:
                for gpu in node.free_gpus:
                    chosen.append(gpu)
                    if len(chosen) == n_gpus:
                        break
                if len(chosen) == n_gpus:
                    break
        else:
            free_by_node = {node.node_id: list(node.free_gpus) for node in candidates}
            while len(chosen) < n_gpus:
                node_id = max(free_by_node, key=lambda nid: (len(free_by_node[nid]), -nid))
                chosen.append(free_by_node[node_id].pop(0))
                if not free_by_node[node_id]:
                    del free_by_node[node_id]
        locations = []
        for gpu in chosen:
            gpu.allocated_job_id = job_id
            gpu.utilization = float(utilization)
            gpu.power_limit_w = power_limit_w
            locations.append((gpu.node_id, gpu.index))
        for node in self.nodes:
            node.refresh_state()
        allocation = Allocation(job_id=job_id, gpu_locations=tuple(locations))
        self._allocations[job_id] = allocation
        return allocation

    def release(self, job_id):
        allocation = self._allocations.pop(job_id, None)
        if allocation is None:
            raise ResourceError(f"job {job_id!r} holds no allocation")
        gpu_by_location = {(g.node_id, g.index): g for g in self.iter_gpus()}
        for location in allocation.gpu_locations:
            gpu = gpu_by_location[location]
            gpu.allocated_job_id = None
            gpu.utilization = 0.0
            gpu.power_limit_w = None
        for node in self.nodes:
            node.refresh_state()
        return allocation

    def it_power_w(self) -> float:
        power = 0.0
        busy_utils, busy_caps = [], []
        for node in self.nodes:
            if node.state is _LegacyNodeState.DRAINED:
                continue
            power += self.facility.node_idle_power_w
            occupied = False
            for gpu in node.gpus:
                if gpu.is_free:
                    power += self.gpu_spec.idle_power_w
                else:
                    occupied = True
                    busy_utils.append(gpu.utilization)
                    busy_caps.append(
                        gpu.power_limit_w if gpu.power_limit_w is not None else self.gpu_spec.tdp_w
                    )
            if occupied:
                power += self.facility.node_active_overhead_w
        if busy_utils:
            power += float(
                np.sum(self.gpu_power_model.power_w(np.asarray(busy_utils), np.asarray(busy_caps)))
            )
        return power


def _records_key(result):
    return [
        (r.job_id, r.start_time_h, r.finish_time_h, r.energy_j, r.completed)
        for r in result.job_records
    ]


def test_bench_incremental_vs_scan_speedup(worlds):
    """The tentpole claim: >= 5x over the scan-based core on the profiled workload."""
    facility, gpu_model, weather, grid, jobs, horizon_h = worlds["medium"]

    t0 = time.perf_counter()
    legacy_result = _run(LegacyScanCluster(facility, gpu_model), weather, grid, jobs, horizon_h)
    legacy_s = time.perf_counter() - t0

    fast_runs = []
    for _ in range(3):
        t0 = time.perf_counter()
        fast_result = _run(Cluster(facility, gpu_model=gpu_model), weather, grid, jobs, horizon_h)
        fast_runs.append(time.perf_counter() - t0)
    fast_s = min(fast_runs)
    speedup = legacy_s / fast_s

    print_header("Incremental array-backed core vs. pre-refactor scan-based core (medium tier)")
    print_rows(
        [
            {
                "core": "scan-based (seed)",
                "wall_s": legacy_s,
                "speedup": 1.0,
            },
            {
                "core": "incremental (this PR)",
                "wall_s": fast_s,
                "speedup": speedup,
            },
        ]
    )
    print(f"reading: identical workload, identical job records; {speedup:.1f}x faster event loop")

    # Identical outcomes, much less time.
    assert _records_key(fast_result) == _records_key(legacy_result)
    np.testing.assert_allclose(
        fast_result.it_power_w, legacy_result.it_power_w, rtol=1e-9
    )
    assert speedup >= 5.0, f"expected >= 5x over the scan-based core, got {speedup:.2f}x"


# ---------------------------------------------------------------------------
# Composed policy pipelines: no regression vs. the monolithic schedulers
# ---------------------------------------------------------------------------


def _run_with(scheduler, facility, gpu_model, weather, grid, jobs, horizon_h):
    simulator = ClusterSimulator(
        Cluster(facility, gpu_model=gpu_model),
        scheduler,
        SimulationConfig(horizon_h=horizon_h),
        weather_hourly_c=weather,
        cooling=CoolingModel(),
        grid=grid,
    )
    return simulator.run([job.clone_pending() for job in jobs])


def test_bench_pipeline_no_regression_vs_monolithic(worlds):
    """Staged pipelines keep the medium-tier gate: same records, same speed class.

    The canned ``backfill`` pipeline must produce bit-identical job records to
    the monolithic :class:`BackfillScheduler` and, like it, beat the embedded
    scan-based seed core by >= 5x; a parameterized composed pipeline
    (``backfill+carbon(cap=0.7)``) must clear the same speed gate, so the
    per-job stage dispatch cannot erode the simulator-core win.
    """
    from repro.core.levers import make_scheduler

    facility, gpu_model, weather, grid, jobs, horizon_h = worlds["medium"]
    args = (facility, gpu_model, weather, grid, jobs, horizon_h)

    t0 = time.perf_counter()
    legacy_result = _run(LegacyScanCluster(facility, gpu_model), weather, grid, jobs, horizon_h)
    legacy_s = time.perf_counter() - t0

    def best_of_three(scheduler_factory):
        walls, result = [], None
        for _ in range(3):
            t0 = time.perf_counter()
            result = _run_with(scheduler_factory(), *args)
            walls.append(time.perf_counter() - t0)
        return min(walls), result

    monolithic_s, monolithic_result = best_of_three(BackfillScheduler)
    pipeline_s, pipeline_result = best_of_three(lambda: make_scheduler("backfill"))
    composed_s, composed_result = best_of_three(
        lambda: make_scheduler("backfill+carbon(cap=0.7)")
    )

    print_header("Composed policy pipelines vs. monolithic schedulers (medium tier)")
    print_rows(
        [
            {"policy": "scan-based seed core", "wall_s": legacy_s, "speedup": 1.0},
            {
                "policy": "monolithic backfill",
                "wall_s": monolithic_s,
                "speedup": legacy_s / monolithic_s,
            },
            {
                "policy": "pipeline backfill",
                "wall_s": pipeline_s,
                "speedup": legacy_s / pipeline_s,
            },
            {
                "policy": "pipeline backfill+carbon(cap=0.7)",
                "wall_s": composed_s,
                "speedup": legacy_s / composed_s,
            },
        ]
    )

    assert _records_key(pipeline_result) == _records_key(monolithic_result)
    assert composed_result.completed_jobs > 0.9 * len(jobs)
    assert legacy_s / pipeline_s >= 5.0, (
        f"pipeline backfill must keep the >=5x gate, got {legacy_s / pipeline_s:.2f}x"
    )
    assert legacy_s / composed_s >= 5.0, (
        f"composed pipeline must keep the >=5x gate, got {legacy_s / composed_s:.2f}x"
    )


# ---------------------------------------------------------------------------
# Fleet tier: hourly lockstep must not erode the simulator-core win
# ---------------------------------------------------------------------------

FLEET_N_JOBS = 1500
FLEET_HORIZON_H = 7 * 24.0


def test_bench_fleet_lockstep_overhead():
    """3x supercloud-small in lockstep: <= 1.3x the summed standalone runs.

    The fleet's extra work per job is the routing decision (one site snapshot
    per member) plus per-hour ``advance`` calls on every site; the event-loop
    work itself is identical to running each site standalone on the jobs the
    router assigned it.  The gate bounds that orchestration overhead, and the
    per-site job records must stay bit-identical to the standalone runs.
    """
    from repro.experiments import ExperimentSession
    from repro.fleet import FleetSimulator, get_fleet

    fleet = get_fleet("tri-site-small").with_member_overrides(n_months=2)
    session = ExperimentSession(fleet.members[0])
    trace = session.job_trace(
        n_jobs=FLEET_N_JOBS, horizon_h=FLEET_HORIZON_H, spec=fleet.members[0]
    )
    # Pre-build every member's substrates so neither side pays construction.
    for member in fleet.members:
        session.scenario(member)

    def fleet_run():
        return FleetSimulator(
            fleet, router="round-robin", horizon_h=FLEET_HORIZON_H, session=session
        ).run(trace)

    fleet_result = fleet_run()  # warm-up; also yields the assignment split

    # Each member standalone, on exactly the jobs the fleet assigned it.
    by_site = {name: [] for name in fleet.member_names}
    jobs_by_id = {job.job_id: job for job in trace}
    for assignment in fleet_result.assignments:
        by_site[assignment.site_name].append(jobs_by_id[assignment.job_id])

    def standalone_run(member, jobs):
        scenario = session.scenario(member)
        simulator = ClusterSimulator(
            Cluster(member.facility, gpu_model=member.workload.gpu_model),
            BackfillScheduler(),
            SimulationConfig(horizon_h=FLEET_HORIZON_H),
            weather_hourly_c=scenario.weather_hourly_c,
            cooling=CoolingModel(),
            grid=scenario.grid,
        )
        return simulator.run([job.clone_pending() for job in jobs])

    # Interleave the two sides so ambient load/thermal noise hits both alike;
    # compare best-of-N (the least-disturbed round of each).
    fleet_walls, standalone_walls, standalone_results = [], [], None
    for _ in range(5):
        t0 = time.perf_counter()
        standalone_results = [
            standalone_run(member, by_site[member.name]) for member in fleet.members
        ]
        standalone_walls.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fleet_result = fleet_run()
        fleet_walls.append(time.perf_counter() - t0)
    fleet_s = min(fleet_walls)
    standalone_s = min(standalone_walls)
    overhead = fleet_s / standalone_s

    print_header("Fleet lockstep vs. standalone member runs (3x supercloud-small)")
    print_rows(
        [
            {"mode": "standalone sum", "wall_s": standalone_s, "ratio": 1.0},
            {"mode": "fleet lockstep", "wall_s": fleet_s, "ratio": overhead},
        ]
    )
    print(
        f"reading: {FLEET_N_JOBS} jobs routed round-robin across "
        f"{fleet.n_sites} sites; lockstep overhead {overhead:.2f}x"
    )

    for site_result, standalone in zip(fleet_result.site_results, standalone_results):
        assert _records_key(site_result) == _records_key(standalone)
    assert fleet_result.completed_jobs > 0.9 * FLEET_N_JOBS
    assert overhead <= 1.3, (
        f"fleet lockstep overhead must stay <= 1.3x the summed standalone "
        f"runs, got {overhead:.2f}x"
    )


# ---------------------------------------------------------------------------
# Fleet tier: parallel stepping must beat serial on a 4+-site fleet
# ---------------------------------------------------------------------------

FLEET_PARALLEL_N_JOBS = 20_000
FLEET_PARALLEL_HORIZON_H = 7 * 24.0
FLEET_PARALLEL_WORKERS = 4


def _usable_cores() -> int:
    import os

    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def test_bench_fleet_parallel_speedup(benchmark):
    """4x supercloud-medium on worker processes: bit-identical and >= 2x serial.

    The parallel backend hosts each member's ``ClusterSimulator`` on a worker
    process and steps the hourly windows concurrently while routing stays in
    the coordinator, so the records must match the serial in-process loop
    bit-for-bit — that part is asserted unconditionally.  The >= 2x speed gate
    only applies when the machine actually has >= 4 usable cores (CI runners
    do); on smaller machines the timings are still printed so the IPC
    overhead stays visible in the report.
    """
    from repro.experiments import ExperimentSession
    from repro.fleet import FleetSimulator, get_fleet
    from repro.parallel import ParallelConfig

    fleet = get_fleet("quad-climate-medium").with_member_overrides(n_months=2)
    session = ExperimentSession(fleet.members[0])
    trace = session.job_trace(
        n_jobs=FLEET_PARALLEL_N_JOBS,
        horizon_h=FLEET_PARALLEL_HORIZON_H,
        spec=fleet.members[0],
    )
    # Pre-build every member's substrates so neither stepping mode pays
    # construction; the parallel backend ships them to workers via fork.
    for member in fleet.members:
        session.scenario(member)

    def fleet_run(parallel=None):
        return FleetSimulator(
            fleet,
            router="least-queued",
            horizon_h=FLEET_PARALLEL_HORIZON_H,
            parallel=parallel,
            session=session,
        ).run(trace)

    serial_walls, serial_result = [], None
    for _ in range(3):
        t0 = time.perf_counter()
        serial_result = fleet_run()
        serial_walls.append(time.perf_counter() - t0)
    serial_s = min(serial_walls)

    parallel_walls = []

    def parallel_run():
        t0 = time.perf_counter()
        result = fleet_run(parallel=ParallelConfig(n_workers=FLEET_PARALLEL_WORKERS))
        parallel_walls.append(time.perf_counter() - t0)
        return result

    parallel_result = benchmark.pedantic(
        parallel_run, rounds=3, iterations=1, warmup_rounds=0
    )
    parallel_s = min(parallel_walls)
    speedup = serial_s / parallel_s
    cores = _usable_cores()

    timings = parallel_result.step_timings
    print_header(
        "Fleet parallel stepping vs. serial lockstep (4x supercloud-medium)"
    )
    print_rows(
        [
            {"mode": "serial in-process", "wall_s": serial_s, "speedup": 1.0},
            {
                "mode": f"parallel x{timings.n_workers}",
                "wall_s": parallel_s,
                "speedup": speedup,
            },
        ]
    )
    print(
        f"reading: {FLEET_PARALLEL_N_JOBS} jobs routed least-queued across "
        f"{fleet.n_sites} sites on {cores} usable core(s); route "
        f"{timings.route_s:.3f}s, max site advance "
        f"{timings.max_site_advance_s:.3f}s"
    )

    # Parity by construction: routing stays in the coordinator, so the
    # assignments and every site's job records match bit-for-bit.
    assert timings.mode == "parallel"
    assert parallel_result.assignments == serial_result.assignments
    for serial_site, parallel_site in zip(
        serial_result.site_results, parallel_result.site_results
    ):
        assert _records_key(parallel_site) == _records_key(serial_site)

    if cores >= FLEET_PARALLEL_WORKERS:
        assert speedup >= 2.0, (
            f"parallel fleet stepping must be >= 2x serial on a "
            f"{fleet.n_sites}-site fleet with {cores} usable cores, "
            f"got {speedup:.2f}x"
        )
    else:
        print(
            f"note: only {cores} usable core(s) — the >= 2x gate needs "
            f">= {FLEET_PARALLEL_WORKERS}; parity still asserted"
        )
