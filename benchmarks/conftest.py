"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or one of the
quantitative claims its argument rests on), times the regeneration with
pytest-benchmark, prints the reproduced series/rows, and asserts the *shape*
of the paper's finding (signs of correlations, who wins, rough factors) —
never the authors' absolute numbers, since the substrate here is a simulator.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import SuperCloudScenario


@pytest.fixture(scope="session")
def scenario() -> SuperCloudScenario:
    """The shared 2020-2021 SuperCloud-like scenario used by the figure benchmarks."""
    return SuperCloudScenario.build(seed=0, start_year=2020, n_months=24)
