"""EQ2 (companion) — adverse selection in self-characterised queues (Section II.C).

Paper warning: if users can freely self-select into queues, they will
mis-report preferences to grab the fastest resources, leaving "select queues
clogged and overtaxed and others largely, if not entirely, idle".  The
benchmark measures exactly that under three behavioural regimes (truthful,
strategic, two-part-mechanism) on the same synthetic population.
"""

from benchmarks._report import print_header, print_rows
from repro.core.adverse_selection import AdverseSelectionStudy


def test_bench_adverse_selection(benchmark):
    study = AdverseSelectionStudy(seed=1, strategic_fraction=0.6)
    regimes = benchmark.pedantic(
        lambda: study.compare_regimes(n_users=600), rounds=1, iterations=1, warmup_rounds=0
    )

    print_header("Queue self-selection regimes (600 users, three-queue menu)")
    print_rows(
        [
            {
                "regime": name,
                "misreport_rate": outcome.misreport_rate,
                "urgent_queue_share_of_demand": outcome.urgent_queue_congestion,
                "expected_urgent_wait_h": outcome.expected_urgent_wait_penalty_h,
                "queue_imbalance": outcome.imbalance,
            }
            for name, outcome in regimes.items()
        ]
    )
    print("reading: under strategic self-selection the urgent queue clogs and genuinely urgent")
    print("work waits many times longer; the two-part mechanism removes the incentive to lie and")
    print("restores the truthful allocation — the paper's argument for bundling choice with caps.")

    truthful, strategic, two_part = regimes["truthful"], regimes["strategic"], regimes["two-part"]
    assert strategic.misreport_rate > 0.1
    assert strategic.urgent_queue_congestion > truthful.urgent_queue_congestion
    assert strategic.expected_urgent_wait_penalty_h > 2.0 * truthful.expected_urgent_wait_penalty_h
    assert two_part.misreport_rate == 0.0
    assert two_part.expected_urgent_wait_penalty_h <= truthful.expected_urgent_wait_penalty_h * 1.01
