"""Printing helpers shared by the benchmark harness."""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["print_header", "print_rows"]


def print_header(title: str) -> None:
    """Print a section header for a reproduced artifact."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_rows(rows: Iterable[Mapping[str, object]]) -> None:
    """Print dict records as an aligned table."""
    rows = list(rows)
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    formatted = [
        {k: (f"{v:.4g}" if isinstance(v, float) else str(v)) for k, v in row.items()} for row in rows
    ]
    widths = {k: max(len(str(k)), *(len(r[k]) for r in formatted)) for k in keys}
    print("  ".join(str(k).ljust(widths[k]) for k in keys))
    print("-" * (sum(widths.values()) + 2 * (len(keys) - 1)))
    for row in formatted:
        print("  ".join(row[k].ljust(widths[k]) for k in keys))
