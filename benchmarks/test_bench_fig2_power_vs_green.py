"""FIG2 — Fig. 2: monthly facility power vs. monthly solar+wind share.

Paper claim: over 2020-2021 the SuperCloud's power consumption was high exactly
when the grid's solar+wind share was low (summer) and vice versa (spring), an
anti-correlation that creates the temporal-shifting opportunity of Section II.A.
"""

from benchmarks._report import print_header, print_rows
from repro.analysis.figures import fig2_power_vs_green_share


def test_bench_fig2_power_vs_green_share(benchmark, scenario):
    result = benchmark.pedantic(
        fig2_power_vs_green_share, args=(scenario,), rounds=3, iterations=1, warmup_rounds=0
    )

    print_header("Fig. 2 — monthly average power (kW) vs. % of energy from solar+wind")
    print_rows(
        [
            {
                "month": label,
                "avg_power_kw": float(result.monthly_power_kw[i]),
                "solar_wind_pct": float(result.monthly_renewable_share_pct[i]),
            }
            for i, label in enumerate(result.month_labels)
        ]
    )
    print(f"correlation(power, green share) = {result.correlation:+.3f}  (paper: visibly negative)")
    print(f"power peak month   : {result.power_peak_month}   (paper: June-August)")
    print(f"greenest month      : {result.renewable_peak_month}   (paper: February-May)")
    print(f"mismatch opportunity: {result.mismatch_opportunity():.2f} percentage points of green share")

    assert result.correlation < -0.1
    assert result.power_peak_month.split()[0] in {"Jun", "Jul", "Aug"}
    assert result.renewable_peak_month.split()[0] in {"Feb", "Mar", "Apr", "May"}
    assert 150.0 < result.monthly_power_kw.min() < result.monthly_power_kw.max() < 550.0
