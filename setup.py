"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in offline environments whose setuptools/pip
combination cannot build PEP 660 editable wheels (no ``wheel`` package
available), via ``pip install -e . --no-build-isolation`` falling back to the
legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
