"""Tests for the parallel sweep harness."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.parallel.pool import ParallelConfig, map_parallel
from repro.parallel.sweep import ParameterSweep, SweepPoint, SweepResult, grid_points


def square(x: int) -> int:
    return x * x


def uneven_identity(x: int) -> int:
    """Module-level (picklable) task whose duration *decreases* with x, so
    later tasks finish first and only explicit ordering keeps results sorted."""
    time.sleep(0.02 * (3 - x % 4))
    return x


def evaluate_point(point: SweepPoint) -> float:
    return point.params["a"] * 10 + point.params["b"]


class TestParallelConfig:
    def test_defaults_serial(self):
        assert ParallelConfig().resolved_workers() == 1

    def test_zero_means_all_cores(self):
        assert ParallelConfig(n_workers=0).resolved_workers() >= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(n_workers=-1)
        with pytest.raises(ConfigurationError):
            ParallelConfig(chunksize=0)


class TestMapParallel:
    def test_serial_path(self):
        assert map_parallel(square, [1, 2, 3]) == [1, 4, 9]

    def test_serial_preserves_order(self):
        assert map_parallel(square, range(10)) == [i * i for i in range(10)]

    def test_small_task_count_stays_serial_even_with_workers(self):
        config = ParallelConfig(n_workers=4, min_tasks_for_processes=100)
        # A lambda is not picklable; succeeding proves the serial path was used.
        assert map_parallel(lambda x: x + 1, [1, 2, 3], config) == [2, 3, 4]

    def test_process_pool_path(self):
        config = ParallelConfig(n_workers=2, min_tasks_for_processes=2)
        assert map_parallel(square, list(range(12)), config) == [i * i for i in range(12)]

    def test_process_pool_preserves_task_order_despite_uneven_durations(self):
        config = ParallelConfig(n_workers=4, min_tasks_for_processes=2, chunksize=1)
        assert map_parallel(uneven_identity, list(range(8)), config) == list(range(8))

    def test_empty_tasks(self):
        assert map_parallel(square, []) == []

    def test_automatic_chunksize(self):
        assert ParallelConfig(n_workers=2).resolved_chunksize(100) == 13
        assert ParallelConfig(n_workers=2).resolved_chunksize(1) == 1
        assert ParallelConfig(n_workers=2, chunksize=5).resolved_chunksize(100) == 5


class TestGridPoints:
    def test_cartesian_product(self):
        points = grid_points({"a": [1, 2], "b": [10, 20, 30]})
        assert len(points) == 6
        assert points[0].params == {"a": 1, "b": 10}
        assert points[-1].params == {"a": 2, "b": 30}

    def test_indices_and_seeds_unique(self):
        points = grid_points({"a": [1, 2, 3]}, seed=5)
        assert [p.index for p in points] == [0, 1, 2]
        assert len({p.seed for p in points}) == 3

    def test_seeds_reproducible(self):
        a = grid_points({"a": [1, 2]}, seed=5)
        b = grid_points({"a": [1, 2]}, seed=5)
        assert [p.seed for p in a] == [p.seed for p in b]

    def test_seeds_stable_across_runs_and_processes(self):
        # Derived seeds are BLAKE2b-based, so they must match these pinned
        # values in any process, interpreter session or Python version —
        # a campaign re-run months later reproduces the same points.
        points = grid_points({"a": [1, 2], "b": [10, 20]}, seed=42)
        assert [p.seed for p in points] == [
            4855536404127542885,
            7525757399721297431,
            8268158626854750867,
            5970367624608819403,
        ]

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_points({})
        with pytest.raises(ConfigurationError):
            grid_points({"a": []})


class TestParameterSweep:
    def test_run_grid(self):
        sweep = ParameterSweep(evaluate_point)
        result = sweep.run_grid({"a": [1, 2], "b": [3, 4]})
        assert len(result) == 4
        assert result.values == (13.0, 14.0, 23.0, 24.0)

    def test_records(self):
        sweep = ParameterSweep(evaluate_point)
        records = sweep.run_grid({"a": [1], "b": [3]}).as_records()
        assert records == [{"a": 1, "b": 3, "value": 13.0}]

    def test_best_minimise_and_maximise(self):
        sweep = ParameterSweep(evaluate_point)
        result = sweep.run_grid({"a": [1, 2], "b": [3, 4]})
        best_point, best_value = result.best(lambda v: v)
        assert best_value == 13.0
        worst_point, worst_value = result.best(lambda v: v, maximize=True)
        assert worst_value == 24.0

    def test_best_breaks_ties_by_lowest_index_in_both_modes(self):
        points = tuple(SweepPoint(index=i, params={"i": i}, seed=i) for i in range(4))
        result = SweepResult(points=points, values=(7.0, 7.0, 7.0, 7.0))
        minimised_point, _ = result.best(lambda v: v)
        maximised_point, _ = result.best(lambda v: v, maximize=True)
        assert minimised_point.index == 0
        assert maximised_point.index == 0

    def test_empty_points_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterSweep(evaluate_point).run([])

    def test_mismatched_result_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepResult(points=(SweepPoint(0, {}, 1),), values=())

    def test_parallel_execution_matches_serial(self):
        points = grid_points({"a": list(range(6)), "b": [1, 2]})
        serial = ParameterSweep(evaluate_point).run(points)
        parallel = ParameterSweep(
            evaluate_point, parallel=ParallelConfig(n_workers=2, min_tasks_for_processes=2)
        ).run(points)
        assert serial.values == parallel.values
