"""Tests for utilization accounting (the Section IV.B utilization story)."""

import numpy as np
import pytest

from repro.cluster.resources import Cluster
from repro.cluster.utilization import (
    UtilizationTracker,
    cluster_utilization_statistics,
    utilization_statistics,
)
from repro.config import FacilityConfig
from repro.errors import DataError


class TestUtilizationTracker:
    def test_empty_tracker(self):
        tracker = UtilizationTracker()
        assert tracker.total_time_s == 0.0
        assert tracker.mean_utilization == 0.0
        assert tracker.busy_fraction == 0.0

    def test_time_weighted_mean(self):
        tracker = UtilizationTracker()
        tracker.observe(100.0, 1.0)
        tracker.observe(300.0, 0.0)
        assert tracker.mean_utilization == pytest.approx(0.25)
        assert tracker.busy_fraction == pytest.approx(0.25)

    def test_busy_fraction_counts_any_nonzero_utilization(self):
        tracker = UtilizationTracker()
        tracker.observe(50.0, 0.1)
        tracker.observe(50.0, 0.0)
        assert tracker.busy_fraction == pytest.approx(0.5)

    def test_merge(self):
        a = UtilizationTracker()
        a.observe(100.0, 0.5)
        b = UtilizationTracker()
        b.observe(100.0, 1.0)
        merged = a.merge(b)
        assert merged.total_time_s == pytest.approx(200.0)
        assert merged.mean_utilization == pytest.approx(0.75)
        # Originals untouched.
        assert a.total_time_s == pytest.approx(100.0)

    def test_validation(self):
        tracker = UtilizationTracker()
        with pytest.raises(DataError):
            tracker.observe(-1.0, 0.5)
        with pytest.raises(DataError):
            tracker.observe(1.0, 1.5)


class TestUtilizationStatistics:
    def test_cloud_gpu_profile_matches_paper_band(self):
        """A fleet mostly at 10-30% utilization shows a large below-30% fraction,
        the headline statistic of the paper's inference discussion."""
        rng = np.random.default_rng(0)
        observations = np.clip(rng.normal(0.22, 0.08, size=500), 0.0, 1.0)
        stats = utilization_statistics(observations)
        assert stats.fraction_below_30pct > 0.7
        assert stats.fraction_above_80pct < 0.05
        assert 0.1 < stats.mean < 0.35

    def test_training_profile(self):
        rng = np.random.default_rng(1)
        observations = np.clip(rng.normal(0.92, 0.03, size=200), 0.0, 1.0)
        stats = utilization_statistics(observations)
        assert stats.fraction_above_80pct > 0.9
        assert stats.p10 > 0.8

    def test_percentiles_ordered(self):
        stats = utilization_statistics(np.linspace(0, 1, 101))
        assert stats.p10 <= stats.median <= stats.p90

    def test_validation(self):
        with pytest.raises(DataError):
            utilization_statistics([])
        with pytest.raises(DataError):
            utilization_statistics([1.5])


class TestClusterUtilizationStatistics:
    def test_reads_busy_gpus_from_state(self):
        cluster = Cluster(FacilityConfig(n_nodes=2, gpus_per_node=4))
        cluster.allocate("a", 2, utilization=0.2)
        cluster.allocate("b", 2, utilization=0.9)
        stats = cluster_utilization_statistics(cluster)
        assert stats.mean == pytest.approx(0.55)
        assert stats.fraction_below_30pct == pytest.approx(0.5)

    def test_idle_cluster_rejected(self):
        cluster = Cluster(FacilityConfig(n_nodes=1, gpus_per_node=2))
        with pytest.raises(DataError):
            cluster_utilization_statistics(cluster)
