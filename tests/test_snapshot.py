"""Simulator checkpoint/restore, stepping-API misuse, and session thread safety.

The headline property: restoring a mid-run snapshot onto a freshly built
simulator and advancing to the horizon yields job records **bit-identical**
to the uninterrupted run — across plain policies, stateful composed
pipelines (the adaptive power-cap observer) and fleet member scenarios, and
surviving a JSON round trip of the snapshot payload.
"""

from __future__ import annotations

import hashlib
import json
import threading

import pytest

from repro.cluster.cooling import CoolingModel
from repro.cluster.observers import SimulatorObserver
from repro.cluster.resources import Cluster
from repro.cluster.simulator import (
    ClusterSimulator,
    SimulationConfig,
    SimulatorSnapshot,
    SNAPSHOT_VERSION,
)
from repro.core.levers import make_scheduler
from repro.errors import CheckpointError, SimulationError, SteppingError
from repro.experiments import ExperimentSession
from repro.fleet import get_fleet
from repro.scheduler.job import Job, JobState
from repro.serve.checkpoint import CheckpointStore

HORIZON_H = 7 * 24.0


def _fingerprint(result) -> str:
    """sha256 over the full job-record table (the bit-identity witness)."""
    records = tuple(
        (
            r.job_id,
            r.start_time_h,
            r.finish_time_h,
            r.energy_j,
            r.power_cap_w,
            r.completed,
        )
        for r in result.job_records
    )
    return hashlib.sha256(repr(records).encode()).hexdigest()


def _build_simulator(world: ExperimentSession, policy: str) -> ClusterSimulator:
    spec = world.spec
    scenario = world.scenario()
    return ClusterSimulator(
        Cluster(spec.facility, gpu_model=spec.workload.gpu_model),
        make_scheduler(policy),
        SimulationConfig(horizon_h=HORIZON_H),
        weather_hourly_c=scenario.weather_hourly_c,
        cooling=CoolingModel(),
        grid=scenario.grid,
    )


@pytest.fixture(scope="module")
def world() -> ExperimentSession:
    return ExperimentSession("supercloud-small")


@pytest.fixture(scope="module")
def trace(world):
    return world.job_trace(n_jobs=150, horizon_h=HORIZON_H)


class TestRestoreParity:
    """restore(snapshot) + finalize == uninterrupted run, bit for bit."""

    @pytest.mark.parametrize(
        "policy",
        [
            "backfill",
            "carbon-aware",
            # A composed pipeline whose adaptive-cap stage is a *stateful*
            # observer: its controller caps and energy-accrual ledger must
            # ride along in the snapshot.
            "backfill+adaptive(budget_w=25000)",
        ],
    )
    def test_policy_parity_through_json(self, world, trace, policy):
        reference = _fingerprint(
            _build_simulator(world, policy).run([j.clone_pending() for j in trace])
        )

        interrupted = _build_simulator(world, policy)
        interrupted.begin([j.clone_pending() for j in trace])
        interrupted.advance(48.0)
        payload = json.loads(json.dumps(interrupted.snapshot().to_jsonable()))

        resumed = _build_simulator(world, policy)
        resumed.restore(SimulatorSnapshot.from_jsonable(payload))
        assert _fingerprint(resumed.finalize()) == reference

    def test_fleet_member_parity(self):
        """A fleet member spec (relocated scenario) restores bit-identically too."""
        member = get_fleet("duo-climate-small").members[1]  # the desert twin
        world = ExperimentSession(member)
        trace = world.job_trace(n_jobs=100, horizon_h=HORIZON_H)
        reference = _fingerprint(
            _build_simulator(world, "backfill").run([j.clone_pending() for j in trace])
        )
        interrupted = _build_simulator(world, "backfill")
        interrupted.begin([j.clone_pending() for j in trace])
        interrupted.advance(24.0)
        snapshot = interrupted.snapshot()
        resumed = _build_simulator(world, "backfill")
        resumed.restore(snapshot)
        assert _fingerprint(resumed.finalize()) == reference

    def test_restore_then_submit_continues(self, world, trace):
        """A restored run accepts further mid-run submissions."""
        interrupted = _build_simulator(world, "backfill")
        interrupted.begin([j.clone_pending() for j in trace])
        interrupted.advance(24.0)
        snapshot = interrupted.snapshot()
        resumed = _build_simulator(world, "backfill")
        resumed.restore(snapshot)
        resumed.submit(Job("late", "u", n_gpus=1, duration_h=2.0, submit_time_h=30.0))
        result = resumed.finalize()
        late = next(r for r in result.job_records if r.job_id == "late")
        assert late.completed

    def test_tick_series_preserved(self, world, trace):
        """The restored run's power series covers the whole horizon seamlessly."""
        uninterrupted = _build_simulator(world, "backfill")
        reference = uninterrupted.run([j.clone_pending() for j in trace])
        interrupted = _build_simulator(world, "backfill")
        interrupted.begin([j.clone_pending() for j in trace])
        interrupted.advance(60.0)
        resumed = _build_simulator(world, "backfill")
        resumed.restore(interrupted.snapshot())
        result = resumed.finalize()
        assert result.it_power_w.tolist() == reference.it_power_w.tolist()
        assert result.facility_energy_kwh == reference.facility_energy_kwh


class TestSnapshotValidation:
    def test_version_mismatch_rejected(self, world, trace):
        simulator = _build_simulator(world, "backfill")
        simulator.begin([j.clone_pending() for j in trace])
        payload = simulator.snapshot().to_jsonable()
        payload["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(CheckpointError, match="version"):
            SimulatorSnapshot.from_jsonable(payload)

    def test_scheduler_mismatch_rejected(self, world, trace):
        simulator = _build_simulator(world, "backfill")
        simulator.begin([j.clone_pending() for j in trace])
        snapshot = simulator.snapshot()
        other = _build_simulator(world, "fifo")
        with pytest.raises(CheckpointError, match="scheduler"):
            other.restore(snapshot)

    def test_config_mismatch_rejected(self, world, trace):
        simulator = _build_simulator(world, "backfill")
        simulator.begin([j.clone_pending() for j in trace])
        snapshot = simulator.snapshot()
        spec = world.spec
        scenario = world.scenario()
        other = ClusterSimulator(
            Cluster(spec.facility, gpu_model=spec.workload.gpu_model),
            make_scheduler("backfill"),
            SimulationConfig(horizon_h=HORIZON_H, tick_h=0.5),
            weather_hourly_c=scenario.weather_hourly_c,
            cooling=CoolingModel(),
            grid=scenario.grid,
        )
        with pytest.raises(CheckpointError, match="tick_h"):
            other.restore(snapshot)

    def test_restore_onto_begun_simulator_rejected(self, world, trace):
        simulator = _build_simulator(world, "backfill")
        simulator.begin([j.clone_pending() for j in trace])
        snapshot = simulator.snapshot()
        begun = _build_simulator(world, "backfill")
        begun.begin()
        with pytest.raises(SteppingError, match="already began"):
            begun.restore(snapshot)

    def test_snapshot_requires_running_run(self, world):
        simulator = _build_simulator(world, "backfill")
        with pytest.raises(SteppingError, match="before begin"):
            simulator.snapshot()
        simulator.begin()
        simulator.finalize()
        with pytest.raises(SteppingError, match="after finalize"):
            simulator.snapshot()

    def test_job_snapshot_round_trip(self):
        job = Job(
            "j1",
            "u1",
            n_gpus=4,
            duration_h=3.0,
            submit_time_h=1.5,
            deadline_h=20.0,
            deferrable=True,
            max_defer_h=6.0,
            power_cap_fraction=0.8,
            tags={"kind": "training"},
        )
        job.mark_started(2.0, power_cap_w=200.0, duration_h=3.4)
        restored = Job.from_snapshot(json.loads(json.dumps(job.to_snapshot())))
        assert restored.state is JobState.RUNNING
        assert restored.to_snapshot() == job.to_snapshot()

    def test_stateless_observer_rejects_foreign_state(self):
        observer = SimulatorObserver()
        assert observer.snapshot_state() is None
        observer.restore_state(None)  # the no-op round trip
        with pytest.raises(CheckpointError):
            observer.restore_state({"unexpected": 1})


class TestSteppingErrors:
    """Misusing the stepping API raises typed SteppingErrors (satellite b)."""

    def test_submit_before_begin(self, world):
        simulator = _build_simulator(world, "backfill")
        with pytest.raises(SteppingError, match="before begin"):
            simulator.submit(Job("j", "u", n_gpus=1, duration_h=1.0, submit_time_h=0.0))

    def test_advance_before_begin(self, world):
        simulator = _build_simulator(world, "backfill")
        with pytest.raises(SteppingError, match="before begin"):
            simulator.advance(1.0)

    def test_begin_twice(self, world):
        simulator = _build_simulator(world, "backfill")
        simulator.begin()
        with pytest.raises(SteppingError, match="twice"):
            simulator.begin()

    def test_finalize_twice(self, world):
        simulator = _build_simulator(world, "backfill")
        simulator.begin()
        simulator.finalize()
        with pytest.raises(SteppingError, match="twice"):
            simulator.finalize()

    def test_advance_behind_cursor(self, world):
        simulator = _build_simulator(world, "backfill")
        simulator.begin()
        simulator.advance(10.0)
        simulator.advance(10.0)  # re-advancing to the same bound is a no-op
        with pytest.raises(SteppingError, match="behind the cursor"):
            simulator.advance(5.0)

    def test_submit_in_the_past(self, world):
        simulator = _build_simulator(world, "backfill")
        simulator.begin()
        simulator.advance(10.0)
        with pytest.raises(SteppingError, match="past"):
            simulator.submit(Job("j", "u", n_gpus=1, duration_h=1.0, submit_time_h=2.0))

    def test_after_finalize(self, world):
        simulator = _build_simulator(world, "backfill")
        simulator.begin()
        simulator.finalize()
        with pytest.raises(SteppingError, match="after finalize"):
            simulator.advance(5.0)
        with pytest.raises(SteppingError, match="after finalize"):
            simulator.submit(Job("j", "u", n_gpus=1, duration_h=1.0, submit_time_h=0.0))

    def test_stepping_error_is_simulation_error(self):
        # Existing callers catching SimulationError keep working.
        assert issubclass(SteppingError, SimulationError)


class TestSessionThreadSafety:
    """Concurrent substrate access builds each world exactly once (satellite c)."""

    def test_concurrent_scenario_builds_once(self):
        session = ExperimentSession("supercloud-small")
        barrier = threading.Barrier(8)
        results = []

        def hit():
            barrier.wait()
            results.append(session.scenario())

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert session.scenario_builds == 1
        assert all(scenario is results[0] for scenario in results)

    def test_concurrent_job_traces_build_once(self):
        session = ExperimentSession("supercloud-small")
        barrier = threading.Barrier(6)
        results = []

        def hit():
            barrier.wait()
            results.append(session.job_trace(n_jobs=40, horizon_h=24.0))

        threads = [threading.Thread(target=hit) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(trace is results[0] for trace in results)

    def test_session_survives_pickling(self):
        import pickle

        session = ExperimentSession("supercloud-small")
        session.scenario()
        clone = pickle.loads(pickle.dumps(session))
        assert clone.spec == session.spec
        # The recreated lock still guards the caches.
        assert clone.scenario() is not None


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        payload = {"format": 1, "meta": {"session_id": "a"}, "snapshot": {}, "ticks": []}
        path = store.save("a", payload)
        assert store.load(path) == payload
        assert store.latest("a") == payload

    def test_pruning_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for index in range(5):
            store.save("a", {"format": 1, "index": index})
        remaining = store.checkpoints("a")
        assert len(remaining) == 2
        assert store.latest("a")["index"] == 4

    def test_corrupt_latest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", {"format": 1, "index": 0})
        newest = store.save("a", {"format": 1, "index": 1})
        newest.write_text("{truncated")  # a crash mid-write
        assert store.latest("a")["index"] == 0

    def test_unserializable_payload_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="JSON"):
            store.save("a", {"format": 1, "bad": float("nan")})
        assert store.checkpoints("a") == []

    def test_session_ids_and_isolation(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", {"format": 1})
        store.save("b", {"format": 1})
        assert store.session_ids() == ["a", "b"]
        assert len(store.checkpoints("a")) == 1

    def test_wrong_format_version_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save("a", {"format": 999})
        with pytest.raises(CheckpointError, match="format"):
            store.load(path)
        assert store.latest("a") is None
