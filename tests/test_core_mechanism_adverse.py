"""Tests for the two-part mechanism and the adverse-selection study."""

import pytest

from repro.core.adverse_selection import AdverseSelectionStudy
from repro.core.mechanism import (
    DEFAULT_MENU,
    MechanismOption,
    TwoPartMechanism,
    UserPreference,
)
from repro.errors import MechanismError
from repro.workloads.training import TrainingJobSpec


WORKLOAD = TrainingJobSpec(name="bench", single_gpu_hours=50.0)


class TestMechanismOptions:
    def test_default_menu_has_status_quo(self):
        assert any(o.power_cap_fraction >= 1.0 and o.gpu_multiplier == 1.0 for o in DEFAULT_MENU)

    def test_option_validation(self):
        with pytest.raises(MechanismError):
            MechanismOption("bad", power_cap_fraction=0.0, gpu_multiplier=1.0)
        with pytest.raises(MechanismError):
            MechanismOption("bad", power_cap_fraction=0.8, gpu_multiplier=0.5)

    def test_menu_requires_status_quo(self):
        with pytest.raises(MechanismError):
            TwoPartMechanism([MechanismOption("eco", 0.7, 1.2)])

    def test_menu_rejects_duplicates(self):
        option = MechanismOption("baseline", 1.0, 1.0)
        with pytest.raises(MechanismError):
            TwoPartMechanism([option, option])


class TestBestResponse:
    def test_green_user_prefers_capped_option(self):
        mechanism = TwoPartMechanism()
        green = UserPreference("green", base_gpus=4, workload=WORKLOAD, time_weight=1.0, energy_weight=1.0)
        choice = mechanism.best_response(green)
        assert choice.option.power_cap_fraction < 1.0

    def test_choice_minimises_stated_utility(self):
        mechanism = TwoPartMechanism()
        user = UserPreference("u", base_gpus=4, workload=WORKLOAD, energy_weight=0.05)
        best = mechanism.best_response(user)
        utilities = [mechanism.evaluate_option(user, o).utility for o in mechanism.menu]
        assert best.utility == pytest.approx(min(utilities))

    def test_evaluate_option_consistency(self):
        mechanism = TwoPartMechanism()
        user = UserPreference("u", base_gpus=2, workload=WORKLOAD)
        eco = next(o for o in mechanism.menu if o.name == "eco")
        choice = mechanism.evaluate_option(user, eco)
        assert choice.n_gpus == max(1, round(2 * eco.gpu_multiplier))
        assert choice.energy_kwh > 0
        assert choice.wall_clock_hours > 0

    def test_preference_validation(self):
        with pytest.raises(MechanismError):
            UserPreference("u", base_gpus=0, workload=WORKLOAD)
        with pytest.raises(MechanismError):
            UserPreference("u", base_gpus=1, workload=WORKLOAD, energy_weight=-1.0)


class TestPopulationOutcome:
    def test_mechanism_saves_energy_without_hurting_time(self):
        """The EQ2 headline: offering the menu reduces system energy while mean
        completion time does not get worse (users only switch when it helps them)."""
        mechanism = TwoPartMechanism()
        population = TwoPartMechanism.synthetic_population(80, seed=0)
        outcome = mechanism.evaluate_population(population)
        assert outcome.energy_savings_fraction > 0.02
        assert outcome.mean_time_change_fraction <= 0.01
        assert 0.0 < outcome.participation_rate <= 1.0

    def test_greener_population_participates_more(self):
        mechanism = TwoPartMechanism()
        neutral = mechanism.evaluate_population(
            TwoPartMechanism.synthetic_population(60, green_fraction=0.0, seed=1)
        )
        green = mechanism.evaluate_population(
            TwoPartMechanism.synthetic_population(60, green_fraction=1.0, seed=1)
        )
        assert green.participation_rate >= neutral.participation_rate
        assert green.energy_savings_fraction >= neutral.energy_savings_fraction

    def test_empty_population_rejected(self):
        with pytest.raises(MechanismError):
            TwoPartMechanism().evaluate_population([])

    def test_synthetic_population_validation(self):
        with pytest.raises(MechanismError):
            TwoPartMechanism.synthetic_population(0)
        with pytest.raises(MechanismError):
            TwoPartMechanism.synthetic_population(5, green_fraction=2.0)


class TestAdverseSelection:
    @pytest.fixture(scope="class")
    def regimes(self):
        return AdverseSelectionStudy(seed=0).compare_regimes(n_users=400)

    def test_all_regimes_present(self, regimes):
        assert set(regimes) == {"truthful", "strategic", "two-part"}

    def test_strategic_regime_misreports(self, regimes):
        assert regimes["strategic"].misreport_rate > 0.1
        assert regimes["truthful"].misreport_rate == 0.0
        assert regimes["two-part"].misreport_rate == 0.0

    def test_strategic_regime_clogs_urgent_queue(self, regimes):
        assert (
            regimes["strategic"].urgent_queue_congestion
            > regimes["truthful"].urgent_queue_congestion
        )
        assert (
            regimes["strategic"].expected_urgent_wait_penalty_h
            > 2.0 * regimes["truthful"].expected_urgent_wait_penalty_h
        )

    def test_two_part_matches_truthful(self, regimes):
        assert regimes["two-part"].urgent_queue_congestion == pytest.approx(
            regimes["truthful"].urgent_queue_congestion
        )

    def test_validation(self):
        with pytest.raises(MechanismError):
            AdverseSelectionStudy(urgent_fraction=2.0)
        with pytest.raises(MechanismError):
            AdverseSelectionStudy().synthetic_population(0)
        with pytest.raises(MechanismError):
            study = AdverseSelectionStudy(seed=0)
            study.run_regime(study.synthetic_population(5), "chaotic")
