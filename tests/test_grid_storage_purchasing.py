"""Tests for the battery model and the purchasing strategies."""

import numpy as np
import pytest

from repro.errors import DataError, SimulationError
from repro.grid.purchasing import (
    BaselinePurchasing,
    GreenWindowPurchasing,
    PriceThresholdPurchasing,
    StorageBackedPurchasing,
    evaluate_purchasing_strategy,
)
from repro.grid.storage import BatteryStorage, StorageConfig


class TestBatteryStorage:
    def test_initial_state(self):
        battery = BatteryStorage(StorageConfig(capacity_kwh=100.0, initial_soc_fraction=0.5))
        assert battery.soc_kwh == pytest.approx(50.0)
        assert battery.soc_fraction == pytest.approx(0.5)

    def test_charge_respects_power_limit(self):
        battery = BatteryStorage(StorageConfig(capacity_kwh=1000.0, max_charge_kw=50.0))
        consumed = battery.charge(200.0, duration_h=1.0)
        assert consumed == pytest.approx(50.0)

    def test_charge_respects_capacity(self):
        battery = BatteryStorage(
            StorageConfig(capacity_kwh=10.0, max_charge_kw=1000.0, round_trip_efficiency=1.0)
        )
        consumed = battery.charge(100.0)
        assert consumed == pytest.approx(10.0)
        assert battery.soc_kwh == pytest.approx(10.0)

    def test_round_trip_losses(self):
        config = StorageConfig(capacity_kwh=1000.0, max_charge_kw=1000.0, round_trip_efficiency=0.8)
        battery = BatteryStorage(config)
        battery.charge(100.0)
        assert battery.soc_kwh == pytest.approx(80.0)
        delivered = battery.discharge(1000.0)
        assert delivered == pytest.approx(80.0)
        assert battery.total_losses_kwh == pytest.approx(20.0)

    def test_discharge_limited_by_soc_and_power(self):
        battery = BatteryStorage(
            StorageConfig(capacity_kwh=100.0, max_discharge_kw=30.0, initial_soc_fraction=1.0)
        )
        assert battery.discharge(500.0, duration_h=1.0) == pytest.approx(30.0)

    def test_idle_self_discharge(self):
        battery = BatteryStorage(
            StorageConfig(capacity_kwh=100.0, initial_soc_fraction=1.0, self_discharge_per_hour=0.01)
        )
        lost = battery.idle(1.0)
        assert lost == pytest.approx(1.0)
        assert battery.soc_kwh == pytest.approx(99.0)

    def test_reset(self):
        battery = BatteryStorage(StorageConfig(capacity_kwh=100.0))
        battery.charge(50.0)
        battery.reset()
        assert battery.soc_kwh == pytest.approx(0.0)
        assert battery.total_charged_kwh == 0.0

    def test_negative_inputs_rejected(self):
        battery = BatteryStorage()
        with pytest.raises(SimulationError):
            battery.charge(-1.0)
        with pytest.raises(SimulationError):
            battery.discharge(-1.0)
        with pytest.raises(SimulationError):
            battery.idle(-1.0)

    def test_energy_conservation(self):
        """Charged grid energy = stored + conversion losses; discharge cannot exceed stored."""
        battery = BatteryStorage(StorageConfig(capacity_kwh=500.0, self_discharge_per_hour=0.0))
        rng = np.random.default_rng(0)
        for _ in range(200):
            battery.charge(float(rng.uniform(0, 100)))
            battery.discharge(float(rng.uniform(0, 100)))
        assert battery.total_discharged_kwh <= battery.total_charged_kwh + 1e-9
        balance = battery.total_charged_kwh - battery.total_discharged_kwh - battery.total_losses_kwh
        assert balance == pytest.approx(battery.soc_kwh, abs=1e-6)


def _hourly_series(year_grid):
    n = year_grid.hours.shape[0]
    return dict(
        hours=year_grid.hours,
        demand_kwh=np.full(n, 300.0),
        prices_per_mwh=year_grid.price_per_mwh,
        renewable_share=year_grid.renewable_share,
        carbon_intensity_g_per_kwh=year_grid.carbon_intensity_g_per_kwh,
    )


class TestPurchasingStrategies:
    def test_baseline_matches_demand(self, year_grid):
        series = _hourly_series(year_grid)
        outcome = evaluate_purchasing_strategy(BaselinePurchasing(), **series)
        assert outcome.total_purchased_kwh == pytest.approx(outcome.total_demand_kwh)
        assert outcome.storage_losses_kwh == 0.0

    def test_price_threshold_reduces_cost(self, year_grid):
        series = _hourly_series(year_grid)
        baseline = evaluate_purchasing_strategy(BaselinePurchasing(), **series)
        strategy = PriceThresholdPurchasing(BatteryStorage(StorageConfig(capacity_kwh=5000.0)))
        shifted = evaluate_purchasing_strategy(strategy, **series)
        assert shifted.average_price_paid_per_mwh < baseline.average_price_paid_per_mwh

    def test_green_window_increases_green_share_of_purchases(self, year_grid):
        series = _hourly_series(year_grid)
        baseline = evaluate_purchasing_strategy(BaselinePurchasing(), **series)
        strategy = GreenWindowPurchasing(BatteryStorage(StorageConfig(capacity_kwh=5000.0)))
        shifted = evaluate_purchasing_strategy(strategy, **series)
        assert shifted.weighted_renewable_share > baseline.weighted_renewable_share

    def test_storage_backed_cycles_less_than_green_window(self, year_grid):
        series = _hourly_series(year_grid)
        green = evaluate_purchasing_strategy(
            GreenWindowPurchasing(BatteryStorage(StorageConfig(capacity_kwh=5000.0))), **series
        )
        conservative = evaluate_purchasing_strategy(
            StorageBackedPurchasing(BatteryStorage(StorageConfig(capacity_kwh=5000.0))), **series
        )
        assert conservative.storage_losses_kwh <= green.storage_losses_kwh

    def test_energy_balance_with_storage(self, year_grid):
        """Purchases must cover demand minus discharges plus charges (no free energy)."""
        series = _hourly_series(year_grid)
        battery = BatteryStorage(StorageConfig(capacity_kwh=2000.0))
        strategy = GreenWindowPurchasing(battery)
        outcome = evaluate_purchasing_strategy(strategy, **series)
        served_from_battery = battery.total_discharged_kwh
        expected_purchases = outcome.total_demand_kwh - served_from_battery + battery.total_charged_kwh
        assert outcome.total_purchased_kwh == pytest.approx(expected_purchases, rel=1e-9)

    def test_mismatched_series_rejected(self, year_grid):
        series = _hourly_series(year_grid)
        series["demand_kwh"] = series["demand_kwh"][:-1]
        with pytest.raises(DataError):
            evaluate_purchasing_strategy(BaselinePurchasing(), **series)

    def test_green_window_requires_battery(self):
        with pytest.raises(DataError):
            GreenWindowPurchasing(None)  # type: ignore[arg-type]

    def test_invalid_quantiles_rejected(self):
        with pytest.raises(DataError):
            GreenWindowPurchasing(BatteryStorage(), green_quantile=0.2, dirty_quantile=0.5)
