"""Tests for the training-job and inference-fleet workload models."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.inference import InferenceFleetModel, InferenceWorkloadSpec
from repro.workloads.training import (
    STANDARD_WORKLOADS,
    ScalingEfficiencyModel,
    TrainingJobModel,
    TrainingJobSpec,
)


class TestScalingEfficiency:
    def test_single_gpu_is_unit(self):
        model = ScalingEfficiencyModel()
        assert model.speedup(1) == pytest.approx(1.0)
        assert model.efficiency(1) == pytest.approx(1.0)

    def test_speedup_monotone_but_sublinear(self):
        model = ScalingEfficiencyModel()
        speedups = [model.speedup(n) for n in (1, 2, 4, 8, 16, 32)]
        assert all(b > a for a, b in zip(speedups, speedups[1:]))
        assert model.speedup(32) < 32.0

    def test_efficiency_decreases(self):
        model = ScalingEfficiencyModel()
        assert model.efficiency(16) < model.efficiency(2)

    def test_invalid_gpu_count(self):
        with pytest.raises(ConfigurationError):
            ScalingEfficiencyModel().speedup(0)

    def test_perfect_scaling_limit(self):
        ideal = ScalingEfficiencyModel(serial_fraction=0.0, comm_overhead_per_log2_gpu=0.0)
        assert ideal.speedup(8) == pytest.approx(8.0)


class TestTrainingJobModel:
    @pytest.fixture(scope="class")
    def model(self) -> TrainingJobModel:
        return TrainingJobModel(TrainingJobSpec(name="test", single_gpu_hours=100.0))

    def test_more_gpus_finish_sooner(self, model):
        assert model.wall_clock_hours(8) < model.wall_clock_hours(2)

    def test_power_cap_slows_down(self, model):
        assert model.wall_clock_hours(4, 0.6) > model.wall_clock_hours(4, None)

    def test_run_energy_components(self, model):
        result = model.run(4)
        assert result.gpu_energy_kwh > 0
        assert result.host_energy_kwh > 0
        assert result.total_energy_kwh == pytest.approx(result.gpu_energy_kwh + result.host_energy_kwh)
        assert result.gpu_hours == pytest.approx(4 * result.wall_clock_hours)

    def test_capped_run_saves_gpu_energy(self, model):
        uncapped = model.run(4, None)
        capped = model.run(4, 0.7)
        assert capped.gpu_energy_kwh < uncapped.gpu_energy_kwh
        assert capped.wall_clock_hours > uncapped.wall_clock_hours

    def test_sweep_power_caps_treats_one_as_uncapped(self, model):
        results = model.sweep_power_caps(4, (1.0, 0.8))
        assert results[0].power_cap_fraction is None
        assert results[1].power_cap_fraction == pytest.approx(0.8)

    def test_sweep_gpu_counts(self, model):
        results = model.sweep_gpu_counts((1, 2, 4))
        hours = [r.wall_clock_hours for r in results]
        assert hours == sorted(hours, reverse=True)

    def test_more_gpus_cost_more_energy(self, model):
        """Parallelism is paid for: total energy grows with GPU count (efficiency loss)."""
        small = model.run(2)
        large = model.run(16)
        assert large.total_energy_kwh > small.total_energy_kwh

    def test_equivalent_gpu_trade(self, model):
        equivalent = model.equivalent_gpu_trade(4, 0.7)
        assert equivalent >= 4
        assert model.wall_clock_hours(equivalent, 0.7) <= model.wall_clock_hours(4, None) + 1e-9

    def test_equivalent_gpu_trade_validates(self, model):
        with pytest.raises(ConfigurationError):
            model.equivalent_gpu_trade(4, 0.0)

    def test_standard_workload_catalogue(self):
        assert "imagenet-resnet50" in STANDARD_WORKLOADS
        for spec in STANDARD_WORKLOADS.values():
            TrainingJobModel(spec).run(4)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            TrainingJobSpec(name="bad", single_gpu_hours=0.0)


class TestInferenceFleet:
    @pytest.fixture(scope="class")
    def model(self) -> InferenceFleetModel:
        spec = InferenceWorkloadSpec(name="svc", mean_queries_per_s=500.0)
        return InferenceFleetModel(spec, seed=0)

    def test_required_gpus_covers_peak(self, model):
        fleet = model.required_gpus()
        capacity = fleet * model.spec.queries_per_gpu_s_at_full_util * model.spec.utilization_at_saturation
        assert capacity >= model.peak_queries_per_s()

    def test_serve_reports_low_utilization(self, model):
        """Serving fleets sized for peak run at the poor utilization the paper cites (10-40%)."""
        result = model.serve(period_days=14.0)
        assert 0.05 < result.mean_utilization < 0.45

    def test_energy_positive_and_split(self, model):
        result = model.serve(period_days=7.0)
        assert result.gpu_energy_kwh > 0
        assert result.host_energy_kwh > 0
        assert result.total_queries > 0
        assert result.energy_per_1k_queries_wh > 0

    def test_smaller_fleet_higher_utilization(self, model):
        provisioned = model.serve(period_days=7.0)
        lean = model.serve(period_days=7.0, n_gpus=max(1, provisioned.n_gpus // 2))
        assert lean.mean_utilization > provisioned.mean_utilization
        assert lean.total_energy_kwh < provisioned.total_energy_kwh

    def test_consolidation_savings(self, model):
        savings = model.consolidation_savings(period_days=7.0)
        assert savings["lean_gpus"] <= savings["provisioned_gpus"]
        assert 0.0 <= savings["energy_savings_fraction"] < 1.0
        assert savings["lean_mean_utilization"] >= savings["provisioned_mean_utilization"]

    def test_hourly_rate_diurnal(self, model):
        rates = model.hourly_query_rate(48)
        assert rates.shape == (48,)
        assert rates.min() > 0

    def test_invalid_inputs(self, model):
        with pytest.raises(ConfigurationError):
            model.serve(period_days=0.0)
        with pytest.raises(ConfigurationError):
            model.hourly_query_rate(0)
        with pytest.raises(ConfigurationError):
            InferenceWorkloadSpec(name="bad", mean_queries_per_s=0.0)
