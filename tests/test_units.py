"""Tests for repro.units."""

import math

import numpy as np
import pytest

from repro import units
from repro.errors import UnitError


class TestPowerConversions:
    def test_watts_kilowatts_roundtrip(self):
        assert units.watts_to_kilowatts(1500.0) == pytest.approx(1.5)
        assert units.kilowatts_to_watts(1.5) == pytest.approx(1500.0)

    def test_megawatt_conversions(self):
        assert units.megawatts_to_watts(2.0) == pytest.approx(2e6)
        assert units.watts_to_megawatts(5e5) == pytest.approx(0.5)

    def test_vectorized(self):
        out = units.watts_to_kilowatts(np.array([1000.0, 2000.0]))
        np.testing.assert_allclose(out, [1.0, 2.0])


class TestEnergyConversions:
    def test_kwh_joules_roundtrip(self):
        assert units.kwh_to_joules(1.0) == pytest.approx(3.6e6)
        assert units.joules_to_kwh(3.6e6) == pytest.approx(1.0)

    def test_mwh_joules(self):
        assert units.mwh_to_joules(1.0) == pytest.approx(3.6e9)
        assert units.joules_to_mwh(7.2e9) == pytest.approx(2.0)

    def test_kwh_mwh(self):
        assert units.kwh_to_mwh(2500.0) == pytest.approx(2.5)
        assert units.mwh_to_kwh(2.5) == pytest.approx(2500.0)

    def test_energy_from_power(self):
        assert units.energy_from_power(100.0, 3600.0) == pytest.approx(360000.0)

    def test_energy_from_power_rejects_negative_duration(self):
        with pytest.raises(UnitError):
            units.energy_from_power(100.0, -1.0)

    def test_average_power(self):
        assert units.average_power(3.6e6, 3600.0) == pytest.approx(1000.0)

    def test_average_power_rejects_zero_duration(self):
        with pytest.raises(UnitError):
            units.average_power(100.0, 0.0)


class TestIntegratePower:
    def test_constant_power(self):
        times = np.arange(0.0, 11.0)
        power = np.full(11, 250.0)
        assert units.integrate_power(power, times) == pytest.approx(2500.0)

    def test_linear_ramp(self):
        times = np.array([0.0, 10.0])
        power = np.array([0.0, 100.0])
        assert units.integrate_power(power, times) == pytest.approx(500.0)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(UnitError):
            units.integrate_power(np.ones(3), np.ones(4))

    def test_rejects_single_sample(self):
        with pytest.raises(UnitError):
            units.integrate_power(np.ones(1), np.ones(1))

    def test_rejects_decreasing_timestamps(self):
        with pytest.raises(UnitError):
            units.integrate_power(np.ones(3), np.array([0.0, 2.0, 1.0]))

    def test_rejects_negative_power(self):
        with pytest.raises(UnitError):
            units.integrate_power(np.array([1.0, -1.0]), np.array([0.0, 1.0]))


class TestCarbonAndMoney:
    def test_carbon_from_energy(self):
        # 1 kWh at 300 g/kWh = 300 g
        assert units.carbon_from_energy(3.6e6, 300.0) == pytest.approx(300.0)

    def test_carbon_rejects_negative_intensity(self):
        with pytest.raises(UnitError):
            units.carbon_from_energy(3.6e6, -1.0)

    def test_gram_conversions(self):
        assert units.grams_to_kg(2500.0) == pytest.approx(2.5)
        assert units.grams_to_metric_tons(3e6) == pytest.approx(3.0)
        assert units.kg_to_grams(1.2) == pytest.approx(1200.0)

    def test_cost_from_energy(self):
        # 1 MWh at $40/MWh = $40
        assert units.cost_from_energy(3.6e9, 40.0) == pytest.approx(40.0)

    def test_dollars_per_mwh_to_per_joule(self):
        assert units.dollars_per_mwh_to_per_joule(36.0) == pytest.approx(1e-8)


class TestComputeAndTemperature:
    def test_pflops_days_roundtrip(self):
        flops = units.pflops_days_to_flops(2.0)
        assert units.flops_to_pflops_days(flops) == pytest.approx(2.0)

    def test_pflops_rejects_negative(self):
        with pytest.raises(UnitError):
            units.flops_to_pflops_days(-1.0)

    def test_celsius_fahrenheit_roundtrip(self):
        assert units.celsius_to_fahrenheit(100.0) == pytest.approx(212.0)
        assert units.fahrenheit_to_celsius(32.0) == pytest.approx(0.0)
        value = 17.3
        assert units.fahrenheit_to_celsius(units.celsius_to_fahrenheit(value)) == pytest.approx(value)


class TestEnergyBreakdown:
    def test_pue(self):
        breakdown = units.EnergyBreakdown(it_energy_j=100.0, overhead_energy_j=30.0)
        assert breakdown.total_energy_j == pytest.approx(130.0)
        assert breakdown.pue == pytest.approx(1.3)

    def test_pue_nan_when_no_it_energy(self):
        breakdown = units.EnergyBreakdown(it_energy_j=0.0, overhead_energy_j=10.0)
        assert math.isnan(breakdown.pue)

    def test_addition(self):
        a = units.EnergyBreakdown(100.0, 20.0)
        b = units.EnergyBreakdown(50.0, 10.0)
        combined = a + b
        assert combined.it_energy_j == pytest.approx(150.0)
        assert combined.overhead_energy_j == pytest.approx(30.0)

    def test_rejects_negative(self):
        with pytest.raises(UnitError):
            units.EnergyBreakdown(-1.0, 0.0)


class TestFormatting:
    def test_format_energy_units(self):
        assert units.format_energy(10.0).endswith("J")
        assert "kWh" in units.format_energy(5e6)
        assert "MWh" in units.format_energy(5e9)

    def test_format_power_units(self):
        assert units.format_power(500.0).endswith("W")
        assert "kW" in units.format_power(5e3)
        assert "MW" in units.format_power(5e6)

    def test_format_carbon_units(self):
        assert "gCO2e" in units.format_carbon(10.0)
        assert "kgCO2e" in units.format_carbon(5e3)
        assert "tCO2e" in units.format_carbon(5e6)

    def test_format_rejects_negative(self):
        with pytest.raises(UnitError):
            units.format_energy(-1.0)
        with pytest.raises(UnitError):
            units.format_power(-1.0)
        with pytest.raises(UnitError):
            units.format_carbon(-1.0)
