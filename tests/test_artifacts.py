"""Tests for :mod:`repro.artifacts` and the campaign DAG layer."""

import json

import pytest

from repro.artifacts import (
    ArtifactStore,
    code_version,
    derived_key,
    run_key,
    stable_hash,
)
from repro.artifacts.keys import CODE_VERSION_ENV
from repro.errors import ArtifactError
from repro.experiments import CampaignSpec, ScenarioSpec
from repro.experiments.dag import CampaignDAG, compare_payload, summarize_payload
from repro.experiments.report import render_html, render_markdown, svg_bar_chart

#: A cheap campaign: short horizon, cheap experiments, 2 worlds x 2 experiments.
CHEAP = dict(
    experiments=("table1", "powercap"),
    base=ScenarioSpec(name="dag-unit", n_months=3),
    scenario_grid={"seed": [0, 1]},
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------


class TestKeys:
    def test_stable_hash_deterministic_and_order_insensitive(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
        assert stable_hash([1, 2]) != stable_hash([2, 1])

    def test_stable_hash_normalizes_like_the_stored_json(self):
        import numpy as np

        assert stable_hash({"x": np.float64(1.5)}) == stable_hash({"x": 1.5})
        assert stable_hash({"x": float("nan")}) == stable_hash({"x": None})

    def test_code_version_single_sourced_with_package_version(self):
        import repro

        assert code_version() == repro.__version__

    def test_code_version_env_override(self, monkeypatch):
        monkeypatch.setenv(CODE_VERSION_ENV, "9.9.9-test")
        assert code_version() == "9.9.9-test"

    def test_run_key_covers_every_identity_component(self):
        points = CampaignSpec(**CHEAP).expand()
        baseline = run_key(points[0], version="v1")
        assert run_key(points[0], version="v1") == baseline      # stable
        assert run_key(points[1], version="v1") != baseline      # other spec
        assert run_key(points[2], version="v1") != baseline      # other experiment
        assert run_key(points[0], version="v2") != baseline      # other code version

    def test_run_key_identical_across_equal_campaigns(self):
        a = CampaignSpec(**CHEAP).expand()
        b = CampaignSpec(**CHEAP).expand()
        assert [run_key(p) for p in a] == [run_key(p) for p in b]

    def test_derived_key_cascades_from_upstream(self):
        assert derived_key("summarize", ["k1", "k2"], version="v") != derived_key(
            "summarize", ["k1", "k3"], version="v"
        )
        assert derived_key("summarize", ["k1"], version="v") != derived_key(
            "compare", ["k1"], version="v"
        )


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


class TestArtifactStore:
    KEY = "ab" * 16

    def test_get_put_round_trip(self, store):
        assert store.get(self.KEY) is None
        store.put(self.KEY, {"rows": [1, 2]})
        assert store.get(self.KEY) == {"rows": [1, 2]}
        assert self.KEY in store
        assert list(store.keys()) == [self.KEY]

    def test_put_overwrites(self, store):
        store.put(self.KEY, {"v": 1})
        store.put(self.KEY, {"v": 2})
        assert store.get(self.KEY) == {"v": 2}
        assert store.stats().n_artifacts == 1

    def test_malformed_key_raises(self, store):
        with pytest.raises(ArtifactError, match="malformed"):
            store.put("../escape", {})
        with pytest.raises(ArtifactError):
            store.get("ZZ" * 16)

    def test_unserializable_payload_raises(self, store):
        with pytest.raises(ArtifactError, match="JSON-serializable"):
            store.put(self.KEY, {"bad": object()})

    def test_corrupt_file_reads_as_miss(self, store):
        store.put(self.KEY, {"v": 1})
        store.path_for(self.KEY).write_text("{truncated")
        assert store.get(self.KEY) is None
        assert store.corrupt_reads == 1

    def test_key_mismatched_envelope_reads_as_miss(self, store):
        other = "cd" * 16
        store.put(other, {"v": 1})
        # A file copied to the wrong address must not serve a foreign payload.
        store.path_for(self.KEY).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(self.KEY).write_text(store.path_for(other).read_text())
        assert store.get(self.KEY) is None

    def test_gc_keeps_only_live_keys(self, store):
        live, stale = "ab" * 16, "cd" * 16
        store.put(live, {"v": 1})
        store.put(stale, {"v": 2})
        assert store.gc([live]) == 1
        assert store.get(live) == {"v": 1}
        assert stale not in store

    def test_stats_counts_population_and_traffic(self, store):
        store.put(self.KEY, {"v": 1})
        store.get(self.KEY)
        store.get("ef" * 16)
        stats = store.stats()
        assert stats.n_artifacts == 1
        assert stats.total_bytes > 0
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert json.dumps(stats.to_dict())  # strict-JSON-able


# ---------------------------------------------------------------------------
# Campaign DAG
# ---------------------------------------------------------------------------


class TestCampaignDAG:
    def test_nodes_in_dependency_order(self, store):
        dag = CampaignDAG(CampaignSpec(**CHEAP), store)
        stages = [node.stage for node in dag.nodes()]
        assert stages == ["run"] * 4 + ["summarize", "compare", "report"]
        assert dag.nodes()[4].upstream == dag.run_keys
        assert dag.nodes()[5].upstream == (dag.summarize_key,)
        assert dag.nodes()[6].upstream == (dag.compare_key,)

    def test_materialize_then_rematerialize_all_cached(self, store):
        dag = CampaignDAG(CampaignSpec(**CHEAP), store)
        first = dag.materialize()
        assert first.stage_status["run"] == "0 cached, 4 simulated"
        assert first.stage_status["summarize"] == "computed"
        second = dag.materialize()
        assert second.stage_status["run"] == "4 cached, 0 simulated"
        assert second.stage_status["summarize"] == "cached"
        assert second.stage_status["compare"] == "cached"
        assert second.stage_status["report"] == "cached"
        assert second.report_markdown == first.report_markdown
        assert second.report_html == first.report_html

    def test_simulate_false_on_cold_store_raises(self, store):
        dag = CampaignDAG(CampaignSpec(**CHEAP), store)
        with pytest.raises(ArtifactError, match="missing from"):
            dag.materialize(simulate=False)

    def test_simulate_false_on_warm_store_renders(self, store):
        dag = CampaignDAG(CampaignSpec(**CHEAP), store)
        dag.materialize()
        outcome = dag.materialize(simulate=False)
        assert outcome.result.cache_misses == 0
        assert "# Campaign report" in outcome.report_markdown
        assert "<svg" in outcome.report_html

    def test_editing_one_grid_value_invalidates_only_that_subgraph(self, store):
        dag = CampaignDAG(CampaignSpec(**CHEAP), store)
        dag.materialize()
        edited = CampaignDAG(
            CampaignSpec(**{**CHEAP, "scenario_grid": {"seed": [0, 7]}}), store
        )
        # Shared seed-0 run keys survive; seed-1 keys and all derived keys change.
        assert edited.run_keys[0] == dag.run_keys[0]
        assert edited.run_keys[1] != dag.run_keys[1]
        assert edited.summarize_key != dag.summarize_key
        assert edited.compare_key != dag.compare_key
        assert edited.report_key != dag.report_key
        outcome = edited.materialize()
        assert outcome.stage_status["run"] == "2 cached, 2 simulated"
        assert outcome.stage_status["summarize"] == "computed"

    def test_code_version_invalidates_everything(self, store):
        spec = CampaignSpec(**CHEAP)
        CampaignDAG(spec, store, version="v1").materialize()
        outcome = CampaignDAG(spec, store, version="v2").materialize()
        assert outcome.stage_status["run"] == "0 cached, 4 simulated"

    def test_gc_drops_superseded_artifacts(self, store):
        spec = CampaignSpec(**CHEAP)
        CampaignDAG(spec, store, version="v1").materialize()
        dag = CampaignDAG(spec, store, version="v2")
        dag.materialize()
        assert store.stats().n_artifacts == 14  # both generations
        assert dag.gc() == 7
        assert sorted(store.keys()) == sorted(dag.keys())

    def test_status_by_stage(self, store):
        dag = CampaignDAG(CampaignSpec(**CHEAP), store)
        assert dag.status()["run"] == {"cached": 0, "total": 4}
        dag.materialize()
        assert dag.status() == {
            "run": {"cached": 4, "total": 4},
            "summarize": {"cached": 1, "total": 1},
            "compare": {"cached": 1, "total": 1},
            "report": {"cached": 1, "total": 1},
        }

    def test_force_recomputes_every_stage(self, store):
        dag = CampaignDAG(CampaignSpec(**CHEAP), store)
        dag.materialize()
        outcome = dag.materialize(force=True)
        assert outcome.stage_status["run"] == "0 cached, 4 simulated"
        assert outcome.stage_status["report"] == "computed"

    def test_payloads_are_strict_json_and_chained(self, store):
        dag = CampaignDAG(CampaignSpec(**CHEAP), store)
        outcome = dag.materialize()
        summary = summarize_payload(outcome.result)
        assert json.dumps(summary, allow_nan=False)
        comparison = compare_payload(summary)
        assert json.dumps(comparison, allow_nan=False)
        assert comparison["dimensions"] == ["experiment", "seed"]
        assert comparison["metrics"]  # at least one aggregated metric
        for metric, table in comparison["tables"]["seed"].items():
            assert metric in comparison["metrics"]
            for entry in table:
                assert set(entry) == {"experiment", "label", "mean", "min", "max", "n_points"}


# ---------------------------------------------------------------------------
# Reporting battery
# ---------------------------------------------------------------------------


class TestReportRendering:
    COMPARISON = {
        "experiments": ["fleet"],
        "dimensions": ["experiment", "router"],
        "metrics": ["carbon_kg"],
        "n_points": 2,
        "tables": {
            "experiment": {
                "carbon_kg": [
                    {"experiment": "fleet", "label": "fleet", "mean": 3.0,
                     "min": 1.0, "max": 5.0, "n_points": 2}
                ]
            },
            "router": {
                "carbon_kg": [
                    {"experiment": "fleet", "label": "carbon-min", "mean": 1.0,
                     "min": 1.0, "max": 1.0, "n_points": 1},
                    {"experiment": "fleet", "label": "round|robin\nx", "mean": -5.0,
                     "min": -5.0, "max": -5.0, "n_points": 1},
                ]
            },
        },
    }

    def test_markdown_has_metric_sections_and_escapes_cells(self):
        text = render_markdown(self.COMPARISON, title="demo")
        assert "# Campaign report — demo" in text
        assert "## carbon_kg" in text
        assert "### by router" in text
        # Pipes/newlines inside a label must not break the table row.
        assert "round\\|robin x" in text
        assert len([l for l in text.splitlines() if l.startswith("|")]) >= 5

    def test_html_is_self_contained_with_svg_charts(self):
        html_text = render_html(self.COMPARISON, title="demo")
        assert html_text.startswith("<!doctype html>")
        assert html_text.count("<svg") == 2  # one chart per (metric, dimension)
        assert "<script" not in html_text
        assert "carbon-min" in html_text

    def test_svg_bar_chart_handles_negatives_and_gaps(self):
        svg = svg_bar_chart("m", ["a", "b", "c"], {"x": [1.0, None, -2.0]})
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert svg.count("<rect") == 3  # legend swatch + two bars (gap skipped)

    def test_svg_escapes_labels(self):
        svg = svg_bar_chart("a<b", ["<cat>"], {"<s>": [1.0]})
        assert "<cat>" not in svg.replace("&lt;cat&gt;", "")
        assert "a&lt;b" in svg


# ---------------------------------------------------------------------------
# CLI: cached sweeps and greenhpc report
# ---------------------------------------------------------------------------


SWEEP = ["--experiments", "table1", "--months", "3", "--grid", "seed=0,1"]


class TestCachedCLI:
    def test_sweep_cache_dir_then_rerun_simulates_nothing(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        assert main(["sweep", *SWEEP, "--cache-dir", cache, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert (cold["cache_hits"], cold["cache_misses"]) == (0, 2)
        assert main(["sweep", *SWEEP, "--cache-dir", cache, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert (warm["cache_hits"], warm["cache_misses"]) == (2, 0)
        assert warm["rows"] == cold["rows"]

    def test_sweep_cache_dir_env_fallback_and_no_cache(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("GREENHPC_CACHE_DIR", str(tmp_path / "envcache"))
        assert main(["sweep", *SWEEP, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["cache_misses"] == 2
        assert main(["sweep", *SWEEP, "--no-cache", "--json"]) == 0
        assert "cache_misses" not in json.loads(capsys.readouterr().out)

    def test_no_cache_conflicts_with_cache_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", *SWEEP, "--cache-dir", str(tmp_path), "--no-cache"]) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_report_requires_store(self, capsys):
        from repro.cli import main

        assert main(["report", *SWEEP]) == 1
        assert "--cache-dir" in capsys.readouterr().err

    def test_report_on_cold_store_refuses_to_simulate(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", *SWEEP, "--cache-dir", str(tmp_path / "cache")]) == 1
        assert "missing from" in capsys.readouterr().err

    def test_report_renders_from_warm_store_and_writes_files(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        out = tmp_path / "report"
        assert main(["sweep", *SWEEP, "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["report", *SWEEP, "--cache-dir", cache, "--out", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_misses"] == 0
        assert payload["stage_status"]["run"] == "2 cached, 0 simulated"
        assert (out / "report.md").read_text().startswith("# Campaign report")
        assert "<svg" in (out / "report.html").read_text()

    def test_report_simulate_flag_fills_the_store(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        assert main(["report", *SWEEP, "--cache-dir", cache, "--simulate"]) == 0
        assert "# Campaign report" in capsys.readouterr().out
        # The simulated points are now cached for the next sweep/report.
        assert main(["sweep", *SWEEP, "--cache-dir", cache, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["cache_misses"] == 0
