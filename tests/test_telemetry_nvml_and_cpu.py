"""Tests for the simulated NVML layer and the CPU power model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TelemetryError
from repro.telemetry.cpu_power import KNOWN_CPUS, CpuPowerModel, CpuSpec, get_cpu_spec
from repro.telemetry.nvml_sim import NvmlNotInitializedError, SimulatedNvml


class TestCpuPowerModel:
    def test_known_cpus_consistent(self):
        for spec in KNOWN_CPUS.values():
            assert 0 <= spec.idle_power_w < spec.tdp_w

    def test_lookup(self):
        assert get_cpu_spec("xeon-8260").name == "XEON-8260"
        with pytest.raises(TelemetryError):
            get_cpu_spec("z80")

    def test_idle_and_full_load(self):
        model = CpuPowerModel(get_cpu_spec("XEON-8260"))
        assert float(model.power_w(0.0)) == pytest.approx(model.spec.idle_power_w)
        assert float(model.power_w(1.0)) == pytest.approx(model.spec.tdp_w)

    def test_monotone_in_load(self):
        model = CpuPowerModel(get_cpu_spec("XEON-6248"))
        loads = np.linspace(0, 1, 11)
        powers = np.asarray(model.power_w(loads))
        assert np.all(np.diff(powers) >= 0)

    def test_dram_term(self):
        model = CpuPowerModel(get_cpu_spec("XEON-8260"))
        with_dram = float(model.power_w(0.5, dram_gb_active=256.0))
        without = float(model.power_w(0.5))
        assert with_dram > without

    def test_negative_dram_rejected(self):
        model = CpuPowerModel(get_cpu_spec("XEON-8260"))
        with pytest.raises(TelemetryError):
            model.power_w(0.5, dram_gb_active=-1.0)

    def test_energy(self):
        model = CpuPowerModel(get_cpu_spec("XEON-8260"))
        assert float(model.energy_j(0.0, 10.0)) == pytest.approx(model.spec.idle_power_w * 10.0)

    def test_load_for_power_inverts(self):
        model = CpuPowerModel(get_cpu_spec("XEON-8260"))
        power = float(model.power_w(0.6))
        assert float(model.load_for_power(power)) == pytest.approx(0.6, abs=1e-9)

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            CpuSpec(name="bad", tdp_w=100.0, idle_power_w=150.0, n_cores=8)


class TestSimulatedNvml:
    def test_create_and_count(self):
        nvml = SimulatedNvml.create(4, "V100", seed=0)
        assert nvml.device_count() == 4

    def test_requires_init(self):
        nvml = SimulatedNvml.create(1, "V100", seed=0)
        nvml.shutdown()
        with pytest.raises(NvmlNotInitializedError):
            nvml.device_count()

    def test_handle_out_of_range(self):
        nvml = SimulatedNvml.create(2, "V100", seed=0)
        with pytest.raises(TelemetryError):
            nvml.get_handle(5)

    def test_idle_power_near_spec(self):
        nvml = SimulatedNvml.create(1, "V100", seed=0, measurement_noise_fraction=0.0)
        handle = nvml.get_handle(0)
        assert nvml.device_power_usage_w(handle) == pytest.approx(handle.spec.idle_power_w)

    def test_set_utilization_changes_power(self):
        nvml = SimulatedNvml.create(1, "V100", seed=0, measurement_noise_fraction=0.0)
        handle = nvml.get_handle(0)
        idle = nvml.device_power_usage_w(handle)
        nvml.set_utilization(handle, 0.95)
        assert nvml.device_power_usage_w(handle) > idle

    def test_set_utilization_validates_range(self):
        nvml = SimulatedNvml.create(1, "V100", seed=0)
        with pytest.raises(TelemetryError):
            nvml.set_utilization(nvml.get_handle(0), 1.5)

    def test_power_limit_clamped_and_enforced(self):
        nvml = SimulatedNvml.create(1, "V100", seed=0, measurement_noise_fraction=0.0)
        handle = nvml.get_handle(0)
        enforced = nvml.device_set_power_limit_w(handle, 10.0)
        assert enforced == pytest.approx(handle.spec.min_power_limit_w)
        nvml.set_utilization(handle, 1.0)
        assert nvml.device_power_usage_w(handle) == pytest.approx(enforced)

    def test_reset_power_limit(self):
        nvml = SimulatedNvml.create(1, "V100", seed=0)
        handle = nvml.get_handle(0)
        nvml.device_set_power_limit_w(handle, 150.0)
        nvml.device_reset_power_limit(handle)
        assert nvml.device_power_limit_w(handle) == pytest.approx(handle.spec.tdp_w)

    def test_advance_time_accumulates_energy(self):
        nvml = SimulatedNvml.create(2, "V100", seed=0, measurement_noise_fraction=0.0)
        for handle in nvml.devices:
            nvml.set_utilization(handle, 1.0)
        energy = nvml.advance_time(3600.0)
        assert energy == pytest.approx(2 * 250.0 * 3600.0, rel=1e-6)
        assert nvml.total_energy_j() == pytest.approx(energy)
        assert nvml.clock_s == pytest.approx(3600.0)

    def test_negative_advance_rejected(self):
        nvml = SimulatedNvml.create(1, "V100", seed=0)
        with pytest.raises(TelemetryError):
            nvml.advance_time(-1.0)

    def test_temperature_rises_under_load(self):
        nvml = SimulatedNvml.create(1, "V100", seed=0)
        handle = nvml.get_handle(0)
        start = handle.temperature_c
        nvml.set_utilization(handle, 1.0)
        nvml.advance_time(600.0)
        assert handle.temperature_c > start

    def test_average_utilization_counter(self):
        nvml = SimulatedNvml.create(1, "V100", seed=0)
        handle = nvml.get_handle(0)
        nvml.advance_time(100.0)
        nvml.set_utilization(handle, 0.8)
        nvml.advance_time(100.0)
        assert handle.average_utilization() == pytest.approx(0.5)

    def test_zero_devices_rejected(self):
        with pytest.raises(TelemetryError):
            SimulatedNvml.create(0)

    def test_measurement_noise_zero_mean(self):
        nvml = SimulatedNvml.create(1, "V100", seed=1, measurement_noise_fraction=0.02)
        handle = nvml.get_handle(0)
        nvml.set_utilization(handle, 0.9)
        true = handle.true_power_w()
        samples = [nvml.device_power_usage_w(handle) for _ in range(300)]
        assert np.mean(samples) == pytest.approx(true, rel=0.01)
