"""Tests for the scheduling policies and power-cap controllers."""

import pytest

from repro.config import FacilityConfig
from repro.cluster.resources import Cluster
from repro.errors import SchedulingError
from repro.scheduler.backfill import BackfillScheduler
from repro.scheduler.base import ScheduleDecision, SchedulingContext
from repro.scheduler.carbon_aware import CarbonAwareScheduler
from repro.scheduler.deadline_aware import DeadlineAwareScheduler
from repro.scheduler.energy_aware import EnergyAwareScheduler
from repro.scheduler.fifo import FifoScheduler
from repro.scheduler.job import Job
from repro.scheduler.powercap import (
    AdaptivePowerCapController,
    StaticPowerCapPolicy,
    powercap_energy_tradeoff,
)


def make_job(job_id: str, n_gpus: int, submit: float = 0.0, **kw) -> Job:
    return Job(job_id=job_id, user_id="u", n_gpus=n_gpus, duration_h=2.0, submit_time_h=submit, **kw)


@pytest.fixture()
def cluster() -> Cluster:
    return Cluster(FacilityConfig(n_nodes=2, gpus_per_node=4))  # 8 GPUs


def ctx(**kw) -> SchedulingContext:
    defaults = dict(now_h=0.0)
    defaults.update(kw)
    return SchedulingContext(**defaults)


class TestSchedulingContext:
    def test_green_hour_without_grid_info(self):
        assert ctx().is_green_hour()

    def test_green_hour_thresholding(self):
        assert ctx(carbon_intensity_g_per_kwh=300.0, carbon_intensity_threshold=350.0).is_green_hour()
        assert not ctx(carbon_intensity_g_per_kwh=400.0, carbon_intensity_threshold=350.0).is_green_hour()

    def test_decision_cap_validation(self):
        with pytest.raises(SchedulingError):
            ScheduleDecision(job=make_job("a", 1), power_cap_fraction=0.0)


class TestFifo:
    def test_starts_in_order_until_blocked(self, cluster):
        jobs = [make_job("a", 4, 0.0), make_job("b", 6, 1.0), make_job("c", 1, 2.0)]
        decisions = FifoScheduler().select(jobs, cluster, ctx())
        # "a" fits (4 of 8); "b" (6) does not and blocks "c" despite it fitting.
        assert [d.job.job_id for d in decisions] == ["a"]

    def test_starts_everything_when_it_fits(self, cluster):
        jobs = [make_job("a", 2), make_job("b", 2), make_job("c", 2)]
        decisions = FifoScheduler().select(jobs, cluster, ctx())
        assert [d.job.job_id for d in decisions] == ["a", "b", "c"]


class TestBackfill:
    def test_backfills_around_blocked_head(self, cluster):
        jobs = [make_job("a", 4, 0.0), make_job("b", 6, 1.0), make_job("c", 1, 2.0)]
        decisions = BackfillScheduler().select(jobs, cluster, ctx())
        assert [d.job.job_id for d in decisions] == ["a", "c"]

    def test_never_exceeds_free_gpus(self, cluster):
        jobs = [make_job(f"j{i}", 3, float(i)) for i in range(6)]
        decisions = BackfillScheduler().select(jobs, cluster, ctx())
        assert sum(d.job.n_gpus for d in decisions) <= cluster.n_free_gpus


class TestEnergyAware:
    def test_applies_power_caps(self, cluster):
        scheduler = EnergyAwareScheduler(StaticPowerCapPolicy(cap_fraction=0.7))
        decisions = scheduler.select([make_job("a", 2)], cluster, ctx())
        assert decisions[0].power_cap_fraction == pytest.approx(0.7)

    def test_urgent_queue_exempt_from_caps(self, cluster):
        scheduler = EnergyAwareScheduler(StaticPowerCapPolicy(cap_fraction=0.7))
        job = make_job("a", 2, queue_name="urgent")
        decisions = scheduler.select([job], cluster, ctx())
        assert decisions[0].power_cap_fraction is None

    def test_respects_power_budget(self, cluster):
        scheduler = EnergyAwareScheduler(StaticPowerCapPolicy(cap_fraction=1.0))
        jobs = [make_job("a", 4, utilization=1.0), make_job("b", 4, utilization=1.0)]
        # A tiny facility budget prevents the second start.
        context = ctx(facility_power_budget_w=2000.0, current_pue=1.0, current_it_power_w=0.0)
        decisions = scheduler.select(jobs, cluster, context)
        assert len(decisions) == 1

    def test_no_budget_starts_everything(self, cluster):
        scheduler = EnergyAwareScheduler()
        jobs = [make_job("a", 4), make_job("b", 4)]
        assert len(scheduler.select(jobs, cluster, ctx())) == 2


class TestCarbonAware:
    def test_defers_deferrable_jobs_in_dirty_hours(self, cluster):
        scheduler = CarbonAwareScheduler()
        job = make_job("a", 2, deferrable=True, max_defer_h=24.0)
        dirty = ctx(now_h=1.0, carbon_intensity_g_per_kwh=500.0, carbon_intensity_threshold=300.0)
        assert scheduler.select([job], cluster, dirty) == []

    def test_starts_deferrable_jobs_in_green_hours(self, cluster):
        scheduler = CarbonAwareScheduler()
        job = make_job("a", 2, deferrable=True, max_defer_h=24.0)
        green = ctx(now_h=1.0, carbon_intensity_g_per_kwh=200.0, carbon_intensity_threshold=300.0)
        assert len(scheduler.select([job], cluster, green)) == 1

    def test_deferral_window_expiry_forces_start(self, cluster):
        scheduler = CarbonAwareScheduler()
        job = make_job("a", 2, submit=0.0, deferrable=True, max_defer_h=6.0)
        dirty_late = ctx(now_h=7.0, carbon_intensity_g_per_kwh=500.0, carbon_intensity_threshold=300.0)
        assert len(scheduler.select([job], cluster, dirty_late)) == 1

    def test_non_deferrable_jobs_start_immediately(self, cluster):
        scheduler = CarbonAwareScheduler()
        dirty = ctx(now_h=0.0, carbon_intensity_g_per_kwh=500.0, carbon_intensity_threshold=300.0)
        assert len(scheduler.select([make_job("a", 2)], cluster, dirty)) == 1

    def test_dirty_hour_cap_applied(self, cluster):
        scheduler = CarbonAwareScheduler(dirty_hour_cap_fraction=0.6)
        dirty = ctx(now_h=0.0, carbon_intensity_g_per_kwh=500.0, carbon_intensity_threshold=300.0)
        decisions = scheduler.select([make_job("a", 2)], cluster, dirty)
        assert decisions[0].power_cap_fraction == pytest.approx(0.6)

    def test_no_dirty_cap_in_green_hours(self, cluster):
        scheduler = CarbonAwareScheduler(dirty_hour_cap_fraction=0.6)
        green = ctx(now_h=0.0, carbon_intensity_g_per_kwh=100.0, carbon_intensity_threshold=300.0)
        decisions = scheduler.select([make_job("a", 2)], cluster, green)
        assert decisions[0].power_cap_fraction is None


class TestDeadlineAware:
    def test_edf_ordering(self, cluster):
        jobs = [
            make_job("late", 4, submit=0.0, deadline_h=50.0),
            make_job("soon", 4, submit=1.0, deadline_h=5.0),
            make_job("none", 4, submit=0.5),
        ]
        decisions = DeadlineAwareScheduler().select(jobs, cluster, ctx())
        assert [d.job.job_id for d in decisions][:2] == ["soon", "late"]

    def test_uses_slack_to_defer_in_dirty_hours(self, cluster):
        scheduler = DeadlineAwareScheduler()
        job = make_job("a", 2, submit=0.0, deadline_h=100.0)  # plenty of slack
        dirty = ctx(now_h=0.0, carbon_intensity_g_per_kwh=500.0, carbon_intensity_threshold=300.0)
        assert scheduler.select([job], cluster, dirty) == []

    def test_starts_when_slack_exhausted(self, cluster):
        scheduler = DeadlineAwareScheduler(slack_margin_h=1.0)
        job = make_job("a", 2, submit=0.0, deadline_h=4.0)  # must start by hour 2
        dirty = ctx(now_h=1.5, carbon_intensity_g_per_kwh=500.0, carbon_intensity_threshold=300.0)
        assert len(scheduler.select([job], cluster, dirty)) == 1


class TestStaticPowerCapPolicy:
    def test_agreed_cap_takes_precedence_when_stricter(self):
        policy = StaticPowerCapPolicy(cap_fraction=0.8)
        job = make_job("a", 1, power_cap_fraction=0.6)
        assert policy.cap_for(job) == pytest.approx(0.6)

    def test_policy_cap_when_job_cap_looser(self):
        policy = StaticPowerCapPolicy(cap_fraction=0.7)
        job = make_job("a", 1, power_cap_fraction=0.9)
        assert policy.cap_for(job) == pytest.approx(0.7)

    def test_invalid_fraction(self):
        with pytest.raises(SchedulingError):
            StaticPowerCapPolicy(cap_fraction=1.5)


class TestAdaptivePowerCapController:
    def test_tightens_when_over_budget(self):
        controller = AdaptivePowerCapController(power_budget_w=1000.0, step_fraction=0.1)
        jobs = [make_job("a", 4, utilization=1.0), make_job("b", 1, utilization=0.5)]
        caps = controller.update(jobs, current_it_power_w=2000.0)
        assert min(caps.values()) < 1.0

    def test_relaxes_when_under_budget(self):
        controller = AdaptivePowerCapController(power_budget_w=10_000.0, step_fraction=0.1)
        jobs = [make_job("a", 4)]
        controller._current_caps["a"] = 0.6
        caps = controller.update(jobs, current_it_power_w=1000.0)
        assert caps["a"] > 0.6

    def test_never_below_min_cap(self):
        controller = AdaptivePowerCapController(power_budget_w=1.0, min_cap_fraction=0.5, step_fraction=0.3)
        jobs = [make_job("a", 4)]
        for _ in range(10):
            caps = controller.update(jobs, current_it_power_w=1e9)
        assert caps["a"] == pytest.approx(0.5)

    def test_forgets_finished_jobs(self):
        controller = AdaptivePowerCapController(power_budget_w=1000.0)
        controller.update([make_job("a", 1)], 2000.0)
        caps = controller.update([make_job("b", 1)], 2000.0)
        assert "a" not in caps

    def test_validation(self):
        with pytest.raises(SchedulingError):
            AdaptivePowerCapController(power_budget_w=0.0)


class TestPowercapTradeoff:
    def test_monotone_savings_and_penalty(self):
        points = powercap_energy_tradeoff(cap_fractions=(1.0, 0.8, 0.6))
        savings = [p.energy_savings_pct for p in points]
        penalties = [p.runtime_penalty_pct for p in points]
        assert savings == sorted(savings)
        assert penalties == sorted(penalties)

    def test_moderate_caps_save_more_than_they_cost(self):
        points = powercap_energy_tradeoff(cap_fractions=(0.8, 0.7), utilization=1.0)
        for point in points:
            assert point.energy_savings_pct > point.runtime_penalty_pct

    def test_uncapped_point_is_neutral(self):
        point = powercap_energy_tradeoff(cap_fractions=(1.0,))[0]
        assert point.energy_savings_pct == pytest.approx(0.0, abs=1e-9)
        assert point.runtime_penalty_pct == pytest.approx(0.0, abs=1e-9)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(SchedulingError):
            powercap_energy_tradeoff(cap_fractions=(0.0,))
