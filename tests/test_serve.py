"""The simulation service: daemon API, streaming, routing, restart-restore.

Each test class shares one in-process :class:`~repro.serve.ServeDaemon` on an
ephemeral port, talked to through the pure-stdlib
:class:`~repro.serve.ServeClient`.  The restart test is the subsystem's
acceptance gate: checkpoint at hour H, drop the daemon, restore into a fresh
one, advance to the horizon — the run summary must equal the uninterrupted
session's bit for bit.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServeError
from repro.serve import ServeClient, ServeDaemon

HORIZON_H = 72.0


@pytest.fixture()
def daemon(tmp_path):
    daemon = ServeDaemon(
        port=0,
        checkpoint_dir=str(tmp_path / "ckpt"),
        checkpoint_every_h=1000.0,  # only explicit checkpoints in tests
        request_timeout_s=30.0,
    )
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    try:
        yield daemon
    finally:
        daemon._server.shutdown()
        daemon.close()
        thread.join(timeout=5)


@pytest.fixture()
def client(daemon):
    return ServeClient(f"http://127.0.0.1:{daemon.port}")


def _create(client, session_id="s1", **extra):
    params = dict(
        session_id=session_id,
        scenario="supercloud-small",
        policy="backfill",
        horizon_h=HORIZON_H,
        preload_jobs=60,
    )
    params.update(extra)
    return client.create_session(**params)


class TestSessionLifecycle:
    def test_health_and_version(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["checkpointing"] is True
        from repro import __version__

        assert client.version()["version"] == __version__

    def test_create_advance_finalize(self, client):
        status = _create(client)
        assert status["session_id"] == "s1"
        assert status["now_h"] == 0.0
        status = client.advance("s1", until_h=24.0)
        assert status["now_h"] == 24.0
        assert status["timed_out"] is False
        assert status["ticks_recorded"] == 24
        summary = client.finalize("s1")["summary"]
        assert summary["completed_jobs"] > 0
        assert client.session_status("s1")["finalized"] is True

    def test_mid_run_submission_runs(self, client):
        _create(client, preload_jobs=0)
        client.advance("s1", until_h=10.0)
        accepted = client.submit_jobs(
            "s1",
            [{"job_id": "mid", "user_id": "u", "n_gpus": 2, "duration_h": 2.0,
              "submit_time_h": 12.0}],
        )["accepted"]
        assert accepted == 1
        client.advance("s1", until_h=HORIZON_H)
        summary = client.finalize("s1")["summary"]
        assert summary["completed_jobs"] == 1.0

    def test_sessions_share_one_world(self, daemon, client):
        _create(client, session_id="a")
        _create(client, session_id="b", policy="carbon-aware")
        assert client.health()["worlds"] == 1
        assert {s["session_id"] for s in client.list_sessions()} == {"a", "b"}
        world = daemon.manager.world_for(daemon.manager.get("a").spec)
        assert world.scenario_builds == 1

    def test_delete_session(self, client):
        _create(client)
        client.delete_session("s1")
        with pytest.raises(ServeError, match="404"):
            client.session_status("s1")

    def test_unknown_session_is_404(self, client):
        with pytest.raises(ServeError, match="404"):
            client.advance("ghost", until_h=1.0)

    def test_bad_requests_are_400(self, client):
        with pytest.raises(ServeError, match="400"):
            client.create_session(scenario="no-such-scenario")
        _create(client)
        with pytest.raises(ServeError, match="400"):
            client.submit_jobs("s1", [{"job_id": "x"}])  # missing required fields
        with pytest.raises(ServeError, match="400"):
            client.create_session(session_id="s1")  # duplicate id
        client.finalize("s1")
        with pytest.raises(ServeError, match="400"):
            client.advance("s1", until_h=80.0)  # finalized

    def test_duplicate_and_past_submissions_rejected(self, client):
        _create(client, preload_jobs=0)
        job = {"job_id": "j", "user_id": "u", "n_gpus": 1, "duration_h": 1.0,
               "submit_time_h": 5.0}
        client.submit_jobs("s1", [job])
        with pytest.raises(ServeError, match="duplicate"):
            client.submit_jobs("s1", [job])
        client.advance("s1", until_h=24.0)
        with pytest.raises(ServeError, match="past"):
            client.submit_jobs("s1", [dict(job, job_id="j2", submit_time_h=3.0)])


class TestTelemetry:
    def test_stream_and_resume_by_cursor(self, client):
        _create(client)
        client.advance("s1", until_h=24.0)
        rows = list(client.stream_telemetry("s1"))
        assert len(rows) == 24
        assert rows[0]["now_h"] == 0.0
        assert rows[-1]["now_h"] == 23.0
        assert all(row["facility_power_w"] >= row["it_power_w"] for row in rows)
        assert all(row["carbon_intensity_g_per_kwh"] > 0 for row in rows)
        client.advance("s1", until_h=30.0)
        tail = list(client.stream_telemetry("s1", since=len(rows)))
        assert [row["now_h"] for row in tail] == [24.0, 25.0, 26.0, 27.0, 28.0, 29.0]

    def test_since_beyond_end_of_stream_is_an_empty_200(self, client):
        _create(client)
        client.advance("s1", until_h=6.0)
        assert list(client.stream_telemetry("s1", since=6)) == []
        assert list(client.stream_telemetry("s1", since=10_000)) == []
        # The session is untouched and still streams from the top.
        assert len(list(client.stream_telemetry("s1"))) == 6

    def test_dropped_follow_reader_resumes_by_cursor(self, client):
        """A follow=1 reader that dies mid-stream reconnects with since=N."""
        _create(client)
        client.advance("s1", until_h=8.0)
        seen = []
        stream = client.stream_telemetry("s1", follow=True, max_wait_s=5.0)
        for row in stream:
            seen.append(row)
            if len(seen) == 3:
                break
        stream.close()  # drop the connection mid-stream
        client.advance("s1", until_h=12.0)
        resumed = list(client.stream_telemetry("s1", since=len(seen)))
        assert [row["now_h"] for row in seen + resumed] == [float(h) for h in range(12)]

    def test_non_integer_since_is_a_clean_400(self, client):
        from urllib import error as urlerror
        from urllib import request as urlrequest

        _create(client)
        client.advance("s1", until_h=2.0)
        for query in ("since=abc", "since=1.5", "max_wait_s=soon"):
            url = f"{client.base_url}/sessions/s1/telemetry?{query}"
            with pytest.raises(urlerror.HTTPError) as excinfo:
                urlrequest.urlopen(url, timeout=10)
            assert excinfo.value.code == 400

    def test_follow_sees_rows_from_concurrent_advance(self, client):
        _create(client)
        collected = []

        def reader():
            for row in client.stream_telemetry("s1", follow=True, max_wait_s=10.0):
                collected.append(row)
                if len(collected) >= 12:
                    break

        thread = threading.Thread(target=reader)
        thread.start()
        client.advance("s1", until_h=12.0)
        thread.join(timeout=20)
        assert not thread.is_alive()
        assert len(collected) >= 12


class TestObservability:
    def test_session_uptime_and_request_counts(self, client):
        _create(client)
        status = client.session_status("s1")
        assert status["uptime_s"] >= 0.0
        assert status["requests"] >= 1  # the status read itself counts
        client.advance("s1", until_h=4.0)
        later = client.session_status("s1")
        assert later["uptime_s"] >= status["uptime_s"]
        assert later["requests"] > status["requests"]
        health = client.health()
        stats = health["session_stats"]["s1"]
        assert stats["uptime_s"] >= 0.0 and stats["requests"] >= 2
        listed = {s["session_id"]: s for s in client.list_sessions()}
        assert "uptime_s" in listed["s1"] and "requests" in listed["s1"]

    def test_metrics_endpoint_is_prometheus_text(self, daemon, client):
        from urllib import request as urlrequest

        _create(client)
        client.advance("s1", until_h=2.0)
        url = f"http://127.0.0.1:{daemon.port}/metrics"
        with urlrequest.urlopen(url, timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        assert "# TYPE serve_requests_total counter" in text
        assert 'route="sessions/{id}/advance"' in text  # bounded-cardinality label
        assert "serve_sessions 1.0" in text
        assert 'serve_session_now_h{session="s1"} 2.0' in text
        assert 'serve_session_requests{session="s1"}' in text
        # Scraping twice refreshes the gauges without duplicating families.
        with urlrequest.urlopen(url, timeout=10) as resp:
            again = resp.read().decode()
        assert again.count("# TYPE serve_sessions gauge") == 1

    def test_unknown_routes_share_one_metric_label(self, daemon, client):
        from urllib import error as urlerror
        from urllib import request as urlrequest

        for path in ("/nope", "/definitely/not/a/route"):
            with pytest.raises(urlerror.HTTPError):
                urlrequest.urlopen(
                    f"http://127.0.0.1:{daemon.port}{path}", timeout=10
                )
        text = (
            urlrequest.urlopen(f"http://127.0.0.1:{daemon.port}/metrics", timeout=10)
            .read()
            .decode()
        )
        assert text.count('route="other"') == 1  # one series, status=404

    def test_requests_are_traced_when_ambient_recorder_enabled(self, client):
        from repro.obs import NULL_RECORDER, TraceRecorder, recording, set_recorder

        try:
            rec = TraceRecorder()
            with recording(rec):
                client.health()
                # The handler thread closes the span just after the body is
                # flushed to the client; give it a beat to land.
                deadline = time.monotonic() + 5.0
                while not rec.spans and time.monotonic() < deadline:
                    time.sleep(0.01)
            spans = [s for s in rec.spans if s.name == "serve.request"]
            assert len(spans) == 1
            assert spans[0].attributes["route"] == "health"
            assert spans[0].attributes["status"] == 200
        finally:
            set_recorder(NULL_RECORDER)


class TestRouting:
    def test_route_prefers_empty_queue(self, client):
        _create(client, session_id="busy", preload_jobs=0)
        _create(client, session_id="idle", preload_jobs=0)
        # Saturate "busy": 30 x 4 GPUs on a 64-GPU facility leaves a queue.
        client.submit_jobs(
            "busy",
            [{"job_id": f"fill-{i}", "user_id": "u", "n_gpus": 4,
              "duration_h": 10.0, "submit_time_h": 0.5} for i in range(30)],
        )
        client.advance("busy", until_h=1.0)
        client.advance("idle", until_h=1.0)
        answer = client.route(
            {"job_id": "probe", "user_id": "u", "n_gpus": 2, "duration_h": 1.0,
             "submit_time_h": 1.0},
            router="least-queued",
        )
        assert answer["session_id"] == "idle"
        assert len(answer["candidates"]) == 2

    def test_route_respects_session_filter_and_composed_spec(self, client):
        _create(client, session_id="a")
        _create(client, session_id="b")
        answer = client.route(
            {"job_id": "probe", "user_id": "u", "n_gpus": 1, "duration_h": 1.0,
             "submit_time_h": 0.0},
            router="carbon-min+queue-cap(max=500)",
            sessions=["b"],
        )
        assert answer["session_id"] == "b"

    def test_route_without_sessions_is_400(self, client):
        with pytest.raises(ServeError, match="400"):
            client.route({"job_id": "p", "user_id": "u", "n_gpus": 1,
                          "duration_h": 1.0, "submit_time_h": 0.0})


class TestCheckpointRestore:
    def test_restart_resumes_bit_identically(self, tmp_path):
        """The acceptance gate: kill at hour 36, restore, finish — same summary."""
        ckpt = str(tmp_path / "ckpt")

        def run_daemon():
            daemon = ServeDaemon(port=0, checkpoint_dir=ckpt, request_timeout_s=30.0)
            thread = threading.Thread(target=daemon.serve_forever, daemon=True)
            thread.start()
            return daemon, ServeClient(f"http://127.0.0.1:{daemon.port}")

        # Uninterrupted reference session.
        daemon, client = run_daemon()
        _create(client, session_id="ref")
        client.advance("ref", until_h=HORIZON_H)
        reference = client.finalize("ref")["summary"]

        # Interrupted twin: advance halfway, checkpoint, drop the daemon cold.
        _create(client, session_id="twin")
        client.advance("twin", until_h=36.0)
        client.checkpoint("twin")
        daemon._server.shutdown()
        daemon.close()

        daemon, client = run_daemon()
        try:
            assert "twin" in client.health()["restored"]
            status = client.session_status("twin")
            assert status["now_h"] == 36.0
            assert status["ticks_recorded"] == 36
            client.advance("twin", until_h=HORIZON_H)
            resumed = client.finalize("twin")["summary"]
            assert resumed == reference
        finally:
            daemon._server.shutdown()
            daemon.close()

    def test_graceful_shutdown_checkpoints_sessions(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        daemon = ServeDaemon(port=0, checkpoint_dir=ckpt, request_timeout_s=30.0)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(f"http://127.0.0.1:{daemon.port}")
        _create(client, session_id="drained")
        client.advance("drained", until_h=12.0)
        daemon.shutdown()  # the SIGTERM path: drain-checkpoint then stop
        thread.join(timeout=10)
        assert not thread.is_alive()
        daemon.close()
        assert "drained" in daemon.store.session_ids()
        payload = daemon.store.latest("drained")
        assert payload["snapshot"]["state"]["advanced_to"] == 12.0
        # And a fresh daemon restores it.
        daemon2 = ServeDaemon(port=0, checkpoint_dir=ckpt)
        assert daemon2.restored == ["drained"]
        daemon2.close()

    def test_checkpoint_disabled_without_dir(self):
        daemon = ServeDaemon(port=0, checkpoint_dir=None)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServeClient(f"http://127.0.0.1:{daemon.port}")
            assert client.health()["checkpointing"] is False
            _create(client)
            with pytest.raises(ServeError, match="disabled"):
                client.checkpoint("s1")
        finally:
            daemon._server.shutdown()
            daemon.close()
            thread.join(timeout=5)


class TestCli:
    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_serve_subcommand_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--checkpoint-dir", "/tmp/x"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.checkpoint_every_h == 24.0
