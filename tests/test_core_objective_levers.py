"""Tests for the Eq. 1 objective/constraint abstractions and the lever grid."""

import numpy as np
import pytest

from repro.core.levers import (
    OperatingPoint,
    SCHEDULER_REGISTRY,
    default_operating_grid,
    make_scheduler,
    register_policy,
    resolve_policy,
)
from repro.scheduler.pipeline import PolicyPipeline
from repro.scheduler.stages import (
    DeadlineOrdering,
    DeadlineSlackGate,
    GreenHourGate,
    PowerBudgetGate,
    StaticCapStage,
)
from repro.core.objective import (
    ActivityConstraint,
    ActivityKind,
    EnergyObjective,
    ObjectiveEvaluation,
    ObjectiveKind,
)
from repro.cluster.simulator import JobRecord, SimulationConfig, SimulationResult
from repro.errors import OptimizationError
from repro.scheduler.carbon_aware import CarbonAwareScheduler
from repro.scheduler.energy_aware import EnergyAwareScheduler


def make_result(facility_kwh=100.0, it_kwh=80.0, delivered=50.0, emissions_profile=300.0):
    """A hand-built SimulationResult with controlled totals."""
    ticks = np.arange(0.0, 10.0)
    it_power = np.full(10, it_kwh * 1e3 / 10.0)
    facility_power = np.full(10, facility_kwh * 1e3 / 10.0)
    records = [
        JobRecord(
            job_id="a", user_id="u", queue_name="standard", n_gpus=2,
            submit_time_h=0.0, start_time_h=0.0, finish_time_h=25.0, wait_time_h=0.0,
            baseline_duration_h=delivered / 2, actual_duration_h=delivered / 2,
            power_cap_w=None, energy_j=1e6, completed=True, had_deadline=False, missed_deadline=False,
        )
    ]
    return SimulationResult(
        scheduler_name="test",
        config=SimulationConfig(horizon_h=10.0, tick_h=1.0),
        tick_times_h=ticks,
        it_power_w=it_power,
        facility_power_w=facility_power,
        pue=facility_power / it_power,
        carbon_intensity_g_per_kwh=np.full(10, emissions_profile),
        price_per_mwh=np.full(10, 40.0),
        job_records=records,
    )


class TestEnergyObjective:
    def test_facility_energy_kind(self):
        result = make_result(facility_kwh=120.0)
        assert EnergyObjective(ObjectiveKind.FACILITY_ENERGY_KWH).value(result) == pytest.approx(120.0)

    def test_emissions_kind(self):
        result = make_result(facility_kwh=100.0, emissions_profile=500.0)
        expected = 100.0 * 500.0 / 1e3
        assert EnergyObjective(ObjectiveKind.EMISSIONS_KG).value(result) == pytest.approx(expected)

    def test_cost_kind(self):
        result = make_result(facility_kwh=100.0)
        assert EnergyObjective(ObjectiveKind.COST_USD).value(result) == pytest.approx(100.0 / 1e3 * 40.0)

    def test_blended_objective(self):
        result = make_result()
        plain = EnergyObjective().value(result)
        blended = EnergyObjective(weight_emissions=1.0).value(result)
        assert blended > plain

    def test_negative_weights_rejected(self):
        with pytest.raises(OptimizationError):
            EnergyObjective(weight_cost=-1.0)


class TestActivityConstraint:
    def test_delivered_gpu_hours(self):
        result = make_result(delivered=60.0)
        constraint = ActivityConstraint(ActivityKind.DELIVERED_GPU_HOURS, alpha=50.0)
        assert constraint.value(result) == pytest.approx(60.0)
        assert constraint.satisfied(result)

    def test_unsatisfied(self):
        result = make_result(delivered=10.0)
        assert not ActivityConstraint(ActivityKind.DELIVERED_GPU_HOURS, alpha=50.0).satisfied(result)

    def test_wait_constraint(self):
        result = make_result()
        constraint = ActivityConstraint(ActivityKind.NEGATIVE_MEAN_WAIT_H, alpha=-6.0)
        assert constraint.satisfied(result)

    def test_on_time_fraction(self):
        result = make_result()
        constraint = ActivityConstraint(ActivityKind.ON_TIME_FRACTION, alpha=0.95)
        assert constraint.satisfied(result)

    def test_evaluation_bundle(self):
        result = make_result()
        evaluation = ObjectiveEvaluation.from_result(
            result, EnergyObjective(), ActivityConstraint(alpha=1.0)
        )
        assert evaluation.feasible
        assert "facility_energy_kwh" in evaluation.summary


class TestOperatingPoint:
    def test_label(self):
        point = OperatingPoint(policy_name="energy-aware", power_cap_fraction=0.75, supply_fraction=0.9)
        assert "energy-aware" in point.label()
        assert "75%" in point.label()

    def test_build_scheduler_types(self):
        # Legacy names resolve to canned pipeline compositions carrying the
        # stages that defined the monolithic policies.
        energy = OperatingPoint(policy_name="energy-aware").build_scheduler()
        assert isinstance(energy, PolicyPipeline)
        assert energy.name == "energy-aware"
        assert any(isinstance(g, PowerBudgetGate) for g in energy.gates)
        assert any(isinstance(s, StaticCapStage) for s in energy.power)
        carbon = OperatingPoint(policy_name="carbon-aware").build_scheduler()
        assert isinstance(carbon, PolicyPipeline)
        assert any(isinstance(g, GreenHourGate) for g in carbon.gates)
        deadline = OperatingPoint(policy_name="deadline-aware").build_scheduler()
        assert isinstance(deadline.ordering, DeadlineOrdering)
        assert any(isinstance(g, DeadlineSlackGate) for g in deadline.gates)

    def test_spec_string_is_a_valid_policy_lever(self):
        point = OperatingPoint(policy_name="backfill+carbon(cap=0.7)+budget")
        scheduler = point.build_scheduler()
        assert isinstance(scheduler, PolicyPipeline)
        assert scheduler.name == "backfill+carbon(cap=0.7)+budget"

    def test_validation(self):
        with pytest.raises(OptimizationError):
            OperatingPoint(supply_fraction=0.0)
        with pytest.raises(OptimizationError):
            OperatingPoint(policy_name="round-robin")
        with pytest.raises(OptimizationError):
            OperatingPoint(power_cap_fraction=1.5)

    def test_make_scheduler_unknown(self):
        with pytest.raises(OptimizationError):
            make_scheduler("not-a-policy")


class TestPolicyRegistry:
    def test_legacy_names_registered(self):
        for name in ("fifo", "backfill", "energy-aware", "carbon-aware", "deadline-aware"):
            assert name in SCHEDULER_REGISTRY

    def test_duplicate_registration_raises(self):
        with pytest.raises(OptimizationError, match="already registered"):
            register_policy("backfill", "backfill")

    def test_register_and_build_custom_policy(self):
        definition = register_policy(
            "test-green-sjf",
            "sjf+backfill+carbon(cap=0.8)",
            help="test policy",
            overwrite=True,
        )
        try:
            scheduler = make_scheduler("test-green-sjf", 0.6)
            assert isinstance(scheduler, PolicyPipeline)
            assert scheduler.name == "test-green-sjf"
            # The cap lever appends a static-cap stage for "append"-mode policies.
            assert any(isinstance(s, StaticCapStage) for s in scheduler.power)
            assert definition.effective_spec(0.6).endswith("cap(fraction=0.6)")
        finally:
            del SCHEDULER_REGISTRY["test-green-sjf"]

    def test_registration_validates_spec(self):
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError, match="no-such-stage"):
            register_policy("broken", "no-such-stage", overwrite=True)
        assert "broken" not in SCHEDULER_REGISTRY

    def test_resolve_policy_error_mentions_catalogue(self):
        with pytest.raises(OptimizationError, match="greenhpc policies"):
            resolve_policy("warp-speed")

    def test_legacy_cap_quirks_preserved(self):
        # fifo/backfill discard the cap lever (the pre-pipeline factories did).
        assert resolve_policy("fifo").effective_spec(0.7) == "fifo"
        # energy-aware always carries a cap stage, defaulting to full TDP.
        assert resolve_policy("energy-aware").effective_spec(None).endswith("cap(fraction=1.0)")

    def test_default_grid_contains_baseline_and_variants(self):
        grid = default_operating_grid()
        labels = {p.label() for p in grid}
        assert len(grid) == len(labels)
        assert any(p.policy_name == "backfill" and p.power_cap_fraction is None for p in grid)
        assert any(p.policy_name == "carbon-aware" for p in grid)
        assert any(p.supply_fraction < 1.0 for p in grid)
