"""Tests for the energy tracker, emissions, reporting, and life-cycle accounting."""

import json

import pytest

from repro.errors import DataError, TrackingError
from repro.telemetry.nvml_sim import SimulatedNvml
from repro.tracking.emissions import (
    REGIONAL_EMISSION_FACTORS,
    emissions_from_energy,
    equivalent_homes_powered_for_a_year,
    equivalent_miles_driven,
    get_emission_factor,
)
from repro.tracking.lifecycle import LifecycleCostModel
from repro.tracking.reporting import ExperimentReport, ReportCollection
from repro.tracking.tracker import EnergyTracker
from repro.workloads.inference import InferenceWorkloadSpec
from repro.workloads.training import TrainingJobSpec


class TestEmissions:
    def test_region_lookup(self):
        assert get_emission_factor("iso-ne").region == "ISO-NE"
        with pytest.raises(DataError):
            get_emission_factor("mars")

    def test_emissions_by_region_name(self):
        grams = float(emissions_from_energy(3.6e6, "ISO-NE"))
        assert grams == pytest.approx(REGIONAL_EMISSION_FACTORS["ISO-NE"].g_co2e_per_kwh)

    def test_emissions_by_numeric_intensity(self):
        assert float(emissions_from_energy(3.6e6, 100.0)) == pytest.approx(100.0)

    def test_negative_intensity_rejected(self):
        with pytest.raises(DataError):
            emissions_from_energy(3.6e6, -5.0)

    def test_cleaner_grid_lower_emissions(self):
        dirty = float(emissions_from_energy(3.6e9, "MISO"))
        clean = float(emissions_from_energy(3.6e9, "FRANCE"))
        assert clean < dirty

    def test_equivalences(self):
        assert float(equivalent_miles_driven(404.0)) == pytest.approx(1.0)
        assert float(equivalent_homes_powered_for_a_year(10_600 * 3.6e6)) == pytest.approx(1.0)
        with pytest.raises(DataError):
            equivalent_miles_driven(-1.0)


def _tracked_run(utilization: float = 0.9, hours: float = 1.0, n_devices: int = 2) -> EnergyTracker:
    nvml = SimulatedNvml.create(n_devices, "V100", seed=0, measurement_noise_fraction=0.0)
    tracker = EnergyTracker(nvml, region="ISO-NE", sampling_period_s=30.0, label="unit-test")
    with tracker:
        for handle in nvml.devices:
            nvml.set_utilization(handle, utilization)
        tracker.advance(hours * 3600.0)
    return tracker


class TestEnergyTracker:
    def test_report_contents(self):
        tracker = _tracked_run()
        report = tracker.report()
        assert report.label == "unit-test"
        assert report.duration_s == pytest.approx(3600.0)
        assert report.n_devices == 2
        assert report.energy_kwh > 0
        assert report.emissions_g > 0
        assert report.emissions_kg == pytest.approx(report.emissions_g / 1e3)
        assert set(report.per_device_energy_j) == {0, 1}

    def test_energy_matches_analytic_value(self):
        tracker = _tracked_run(utilization=1.0, hours=2.0, n_devices=1)
        report = tracker.report()
        assert report.energy_kwh == pytest.approx(2 * 250.0 / 1e3, rel=5e-3)
        assert report.mean_power_w == pytest.approx(250.0, rel=5e-3)

    def test_higher_utilization_more_energy(self):
        low = _tracked_run(utilization=0.2).report().energy_kwh
        high = _tracked_run(utilization=0.95).report().energy_kwh
        assert high > low

    def test_numeric_region(self):
        nvml = SimulatedNvml.create(1, "V100", seed=0)
        tracker = EnergyTracker(nvml, region=100.0)
        with tracker:
            tracker.advance(600.0)
        assert tracker.report().emissions_g > 0

    def test_lifecycle_misuse_rejected(self):
        nvml = SimulatedNvml.create(1, "V100", seed=0)
        tracker = EnergyTracker(nvml)
        with pytest.raises(TrackingError):
            tracker.report()
        with pytest.raises(TrackingError):
            tracker.advance(10.0)
        tracker.start()
        with pytest.raises(TrackingError):
            tracker.start()
        tracker.stop()
        with pytest.raises(TrackingError):
            tracker.stop()
        with pytest.raises(TrackingError):
            tracker.advance(10.0)

    def test_invalid_sampling_period(self):
        nvml = SimulatedNvml.create(1, "V100", seed=0)
        with pytest.raises(TrackingError):
            EnergyTracker(nvml, sampling_period_s=0.0)


class TestReporting:
    def _report(self, name: str, value: float, energy: float) -> ExperimentReport:
        return ExperimentReport(
            name=name,
            task="imagenet",
            performance_metric="top1",
            performance_value=value,
            energy_kwh=energy,
            emissions_kg=energy * 0.3,
            duration_h=5.0,
            gpu_hours=20.0,
            hardware="4x V100",
        )

    def test_from_tracker(self):
        tracker_report = _tracked_run().report()
        report = ExperimentReport.from_tracker(
            tracker_report, task="cifar", performance_metric="acc", performance_value=0.93
        )
        assert report.energy_kwh == pytest.approx(tracker_report.energy_kwh)
        assert report.gpu_hours == pytest.approx(tracker_report.duration_s / 3600.0 * 2)

    def test_performance_per_kwh(self):
        assert self._report("a", 0.9, 3.0).performance_per_kwh == pytest.approx(0.3)

    def test_leaderboard_ordering(self):
        collection = ReportCollection([self._report("eff", 0.9, 1.0), self._report("hungry", 0.95, 100.0)])
        ranked = collection.leaderboard(by="performance_per_kwh")
        assert ranked[0].name == "eff"
        ranked_by_value = collection.leaderboard(by="value")
        assert ranked_by_value[0].name == "hungry"

    def test_leaderboard_unknown_column(self):
        collection = ReportCollection([self._report("a", 0.9, 1.0)])
        with pytest.raises(TrackingError):
            collection.leaderboard(by="vibes")

    def test_totals(self):
        collection = ReportCollection([self._report("a", 0.9, 1.0), self._report("b", 0.8, 2.0)])
        assert collection.total_energy_kwh() == pytest.approx(3.0)
        assert collection.total_emissions_kg() == pytest.approx(0.9)

    def test_csv_and_json_and_markdown(self):
        collection = ReportCollection([self._report("a", 0.9, 1.0)])
        csv_text = collection.to_csv()
        assert "name" in csv_text.splitlines()[0]
        parsed = json.loads(collection.to_json())
        assert parsed[0]["name"] == "a"
        markdown = collection.to_markdown()
        assert "| rank |" in markdown
        assert ReportCollection().to_markdown() == "(no experiments reported)"

    def test_negative_values_rejected(self):
        with pytest.raises(TrackingError):
            ExperimentReport(
                name="x", task="t", performance_metric="m", performance_value=1.0,
                energy_kwh=-1.0, emissions_kg=0.0, duration_h=0.0, gpu_hours=0.0,
            )


class TestLifecycle:
    @pytest.fixture(scope="class")
    def model(self) -> LifecycleCostModel:
        return LifecycleCostModel(
            TrainingJobSpec(name="prod-model", single_gpu_hours=400.0),
            InferenceWorkloadSpec(name="prod-serving", mean_queries_per_s=600.0),
            development_multiplier=4.0,
            training_gpus=8,
            seed=0,
        )

    def test_shares_sum_to_one(self, model):
        breakdown = model.breakdown(365.0)
        assert sum(breakdown.shares().values()) == pytest.approx(1.0)

    def test_inference_dominates_long_deployments(self, model):
        """The paper's 80-90% inference share should appear for year-long deployments."""
        breakdown = model.breakdown(365.0)
        assert breakdown.inference_share > 0.6
        assert breakdown.training_share < 0.2

    def test_inference_share_grows_with_lifetime(self, model):
        shares = model.inference_share_vs_lifetime((30.0, 365.0, 730.0))
        assert shares[730.0] > shares[365.0] > shares[30.0]

    def test_serving_utilization_well_below_training(self, model):
        breakdown = model.breakdown(365.0)
        assert breakdown.inference_mean_utilization < 0.5 * breakdown.training_utilization

    def test_development_multiplier_scales(self):
        cheap = LifecycleCostModel(
            TrainingJobSpec(name="m", single_gpu_hours=100.0),
            InferenceWorkloadSpec(name="s", mean_queries_per_s=100.0),
            development_multiplier=0.0,
            seed=0,
        ).breakdown(30.0)
        assert cheap.development_kwh == 0.0

    def test_invalid_deployment(self, model):
        with pytest.raises(Exception):
            model.breakdown(0.0)
