"""Additional property-style tests for the training/scaling models.

These complement the example-based tests with invariants that must hold for
*any* workload configuration, using hypothesis to explore the parameter space.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mechanism import MechanismOption, TwoPartMechanism, UserPreference
from repro.workloads.training import ScalingEfficiencyModel, TrainingJobModel, TrainingJobSpec


class TestScalingProperties:
    @given(
        st.floats(min_value=0.0, max_value=0.2),
        st.floats(min_value=0.0, max_value=0.05),
        st.integers(min_value=1, max_value=256),
    )
    @settings(max_examples=80, deadline=None)
    def test_speedup_bounded_by_gpu_count(self, serial_fraction, comm_overhead, n_gpus):
        model = ScalingEfficiencyModel(serial_fraction, comm_overhead)
        speedup = model.speedup(n_gpus)
        assert 0 < speedup <= n_gpus + 1e-9
        assert model.efficiency(n_gpus) <= 1.0 + 1e-9


class TestTrainingModelProperties:
    @given(
        st.floats(min_value=1.0, max_value=5000.0),
        st.floats(min_value=0.5, max_value=1.0),
        st.integers(min_value=1, max_value=64),
        st.floats(min_value=0.5, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_capped_runs_never_use_more_gpu_energy(self, gpu_hours, utilization, n_gpus, cap):
        spec = TrainingJobSpec(name="prop", single_gpu_hours=gpu_hours, utilization=utilization)
        model = TrainingJobModel(spec)
        uncapped = model.run(n_gpus, None)
        capped = model.run(n_gpus, cap)
        assert capped.gpu_energy_kwh <= uncapped.gpu_energy_kwh + 1e-9
        assert capped.wall_clock_hours >= uncapped.wall_clock_hours - 1e-9

    @given(st.integers(min_value=1, max_value=32), st.integers(min_value=1, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_more_gpus_never_slower(self, a, b):
        spec = TrainingJobSpec(name="prop", single_gpu_hours=100.0)
        model = TrainingJobModel(spec)
        few, many = min(a, b), max(a, b)
        assert model.wall_clock_hours(many) <= model.wall_clock_hours(few) + 1e-9


class TestMechanismProperties:
    @given(
        st.integers(min_value=1, max_value=16),
        st.floats(min_value=0.0, max_value=0.1),
        st.floats(min_value=0.55, max_value=1.0),
        st.floats(min_value=1.0, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_best_response_never_worse_than_status_quo(self, base_gpus, energy_weight, cap, multiplier):
        """Voluntary participation: a rational user's chosen option has utility no
        worse than the status quo, whatever the menu looks like."""
        menu = (
            MechanismOption("baseline", 1.0, 1.0),
            MechanismOption("offer", cap, multiplier),
        )
        mechanism = TwoPartMechanism(menu)
        user = UserPreference(
            "u",
            base_gpus=base_gpus,
            workload=TrainingJobSpec(name="prop", single_gpu_hours=40.0),
            energy_weight=energy_weight,
        )
        best = mechanism.best_response(user)
        baseline = mechanism.evaluate_option(user, menu[0])
        assert best.utility <= baseline.utility + 1e-9
