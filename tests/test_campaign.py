"""Tests for the campaign API (:mod:`repro.experiments.campaign`)."""

import csv
import io
import json

import pytest

from repro.artifacts import ArtifactStore, run_key
from repro.artifacts.keys import CODE_VERSION_ENV
from repro.errors import ConfigurationError, DataError
from repro.experiments import (
    CampaignResult,
    CampaignSpec,
    ExperimentResult,
    ScenarioSpec,
    get_site,
    run_campaign,
)
from repro.experiments.campaign import clear_worker_sessions
from repro.parallel import ParallelConfig

#: A cheap campaign: neither experiment builds simulation substrates.
CHEAP = dict(experiments=("table1", "powercap"), scenario_grid={"seed": [0, 1], "n_months": [3, 4]})

#: Forces the real process pool even for small campaigns.
TWO_WORKERS = ParallelConfig(n_workers=2, min_tasks_for_processes=2)


class TestCampaignSpec:
    def test_base_accepts_registered_scenario_name(self):
        campaign = CampaignSpec(experiments=("table1",), base="single-year")
        assert campaign.base.n_months == 12

    def test_requires_experiments(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(experiments=())

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(experiments=("nope",))

    def test_unknown_scenario_field_rejected(self):
        with pytest.raises(ConfigurationError, match="scenario field"):
            CampaignSpec(experiments=("table1",), scenario_grid={"horizon": [1]})

    def test_param_undeclared_by_all_experiments_rejected(self):
        with pytest.raises(ConfigurationError, match="declared by none"):
            CampaignSpec(experiments=("table1",), param_grid={"deferrable": [0.1]})

    def test_overlapping_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="both"):
            CampaignSpec(
                experiments=("shifting",),
                scenario_grid={"seed": [0]},
                param_grid={"seed": [1]},
            )

    def test_empty_grid_values_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            CampaignSpec(experiments=("table1",), scenario_grid={"seed": []})

    def test_to_dict_is_strict_json(self):
        campaign = CampaignSpec(
            experiments=("shifting",),
            scenario_grid={"site": ["holyoke-ma", "phoenix-az"]},
            param_grid={"deferrable": [0.2, 0.4]},
        )
        payload = json.loads(json.dumps(campaign.to_dict(), allow_nan=False))
        assert payload["experiments"] == ["shifting"]
        assert payload["scenario_grid"]["site"] == ["holyoke-ma", "phoenix-az"]
        assert payload["param_grid"]["deferrable"] == [0.2, 0.4]


class TestExpansion:
    def test_product_order_and_count(self):
        points = CampaignSpec(**CHEAP).expand()
        assert len(points) == 8
        assert [p.index for p in points] == list(range(8))
        assert [p.experiment for p in points] == ["table1"] * 4 + ["powercap"] * 4
        assert points[0].spec.seed == 0 and points[0].spec.n_months == 3
        assert points[3].spec.seed == 1 and points[3].spec.n_months == 4

    def test_derived_seeds_stable_and_distinct(self):
        first = CampaignSpec(**CHEAP).expand()
        second = CampaignSpec(**CHEAP).expand()
        assert [p.seed for p in first] == [p.seed for p in second]
        assert len({p.seed for p in first}) == len(first)

    def test_site_names_resolved_and_labelled(self):
        points = CampaignSpec(
            experiments=("table1",), scenario_grid={"site": ["holyoke-ma", "phoenix-az"]}
        ).expand()
        assert points[1].spec.site == get_site("phoenix-az")
        assert points[1].varied["site"] == "phoenix-az"

    def test_undeclared_params_deduplicated(self):
        # table1 declares no params: the deferrable sweep collapses to one
        # point for it, while shifting keeps both values.
        points = CampaignSpec(
            experiments=("table1", "shifting"), param_grid={"deferrable": [0.2, 0.4]}
        ).expand()
        by_experiment: dict[str, list] = {}
        for point in points:
            by_experiment.setdefault(point.experiment, []).append(point)
        assert len(by_experiment["table1"]) == 1
        assert "deferrable" not in by_experiment["table1"][0].varied
        assert [p.params["deferrable"] for p in by_experiment["shifting"]] == [0.2, 0.4]

    def test_no_grids_runs_each_experiment_once(self):
        points = CampaignSpec(experiments=("table1", "powercap")).expand()
        assert [p.experiment for p in points] == ["table1", "powercap"]
        assert points[0].seed != points[1].seed

    def test_master_seed_changes_point_seeds_only(self):
        a = CampaignSpec(**CHEAP, seed=1).expand()
        b = CampaignSpec(**CHEAP, seed=2).expand()
        assert [p.spec for p in a] == [p.spec for p in b]
        assert all(pa.seed != pb.seed for pa, pb in zip(a, b))


class TestRunCampaign:
    def test_serial_and_parallel_rows_identical(self):
        campaign = CampaignSpec(**CHEAP)
        serial = run_campaign(campaign)
        parallel = run_campaign(campaign, TWO_WORKERS)
        assert len(serial) == 8
        assert serial.rows == parallel.rows
        assert [p.seed for p in serial.points] == [p.seed for p in parallel.points]

    def test_rows_carry_identity_and_scalars(self):
        result = run_campaign(CampaignSpec(**CHEAP))
        row = result.rows[0]
        assert row["experiment"] == "table1"
        assert row["seed"] == 0 and row["n_months"] == 3
        assert row["point_seed"] == result.points[0].seed
        assert row["n_conferences"] == 42

    def test_worker_session_cache_is_bounded(self):
        from repro.experiments.campaign import _MAX_WORKER_SESSIONS, _WORKER_SESSIONS

        clear_worker_sessions()
        campaign = CampaignSpec(
            experiments=("table1",), scenario_grid={"seed": list(range(12))}
        )
        assert len(run_campaign(campaign)) == 12  # serial: sessions cached here
        assert len(_WORKER_SESSIONS) == _MAX_WORKER_SESSIONS
        clear_worker_sessions()

    def test_worker_sessions_reused_per_spec(self):
        from repro.experiments.campaign import _WORKER_SESSIONS

        clear_worker_sessions()
        campaign = CampaignSpec(
            experiments=("table1", "powercap"), scenario_grid={"seed": [0, 1]}
        )
        run_campaign(campaign)  # serial: sessions live in this process
        # Two distinct specs -> two sessions, shared across both experiments.
        assert len(_WORKER_SESSIONS) == 2
        run_campaign(campaign)
        assert len(_WORKER_SESSIONS) == 2
        clear_worker_sessions()

    def test_param_grid_reaches_experiment(self):
        campaign = CampaignSpec(
            experiments=("shifting",),
            base=ScenarioSpec(n_months=3),
            param_grid={"deferrable": [0.2, 0.4]},
        )
        result = run_campaign(campaign)
        assert [r.params["deferrable"] for r in result.results] == [0.2, 0.4]
        savings = result.column("emissions_savings_pct")
        assert savings[0] < savings[1]  # more deferrable load, more savings


class TestCampaignResult:
    @pytest.fixture(scope="class")
    def result(self) -> CampaignResult:
        return run_campaign(CampaignSpec(**CHEAP))

    def test_length_mismatch_rejected(self, result):
        with pytest.raises(ConfigurationError):
            CampaignResult(campaign=result.campaign, points=result.points, results=())

    def test_column_and_result_for(self, result):
        assert result.column("experiment") == ["table1"] * 4 + ["powercap"] * 4
        assert result.result_for(5).name == "powercap"
        with pytest.raises(DataError):
            result.result_for(99)

    def test_group_by(self, result):
        groups = result.group_by("experiment", "seed")
        assert set(groups) == {(e, s) for e in ("table1", "powercap") for s in (0, 1)}
        assert all(len(rows) == 2 for rows in groups.values())
        with pytest.raises(ConfigurationError):
            result.group_by()

    def test_summarize_excludes_grid_columns(self, result):
        summary = result.summarize("experiment")
        assert [record["experiment"] for record in summary] == ["table1", "powercap"]
        assert all(record["n_points"] == 4 for record in summary)
        powercap = summary[1]
        assert powercap["max_energy_savings_pct_mean"] == pytest.approx(
            powercap["max_energy_savings_pct_min"]
        )
        # The swept spec fields are identity, not metrics.
        assert "seed_mean" not in powercap and "n_months_mean" not in powercap

    def test_summarize_without_keys_aggregates_everything(self, result):
        (overall,) = result.summarize()
        assert overall["n_points"] == 8

    def test_to_json_strict_and_optionally_nested(self, result):
        payload = json.loads(result.to_json())
        assert payload["n_points"] == 8
        assert len(payload["rows"]) == 8
        assert "results" not in payload
        nested = json.loads(result.to_json(include_results=True))
        assert nested["results"][0]["experiment"] == "table1"

    def test_to_csv_round_trips(self, result):
        parsed = list(csv.DictReader(io.StringIO(result.to_csv())))
        assert len(parsed) == 8
        assert parsed[0]["experiment"] == "table1"
        assert parsed[0]["n_conferences"] == "42"
        assert parsed[-1]["experiment"] == "powercap"
        # Ragged columns (table1 scalars) are blank on powercap rows.
        assert parsed[-1]["n_conferences"] == ""

    def test_to_csv_quotes_commas_quotes_and_newlines(self):
        # Regression: policy/router pipeline specs put commas in cells, and
        # a naive join would shear the columns; quotes and newlines must
        # survive a round trip too, and None/NaN must render as empty cells.
        campaign = CampaignSpec(experiments=("table1",))
        point = campaign.expand()[0]
        nasty = ExperimentResult(
            name="table1",
            spec=point.spec,
            rows=(),
            scalars={
                "policy": "backfill+carbon(cap=0.7),budget",
                "note": 'say "hi"\nbye',
                "gap": None,
                "bad_float": float("nan"),
            },
        )
        result = CampaignResult(campaign=campaign, points=(point,), results=(nasty,))
        text = result.to_csv()
        assert "\r" not in text
        (parsed,) = csv.DictReader(io.StringIO(text))
        assert parsed["policy"] == "backfill+carbon(cap=0.7),budget"
        assert parsed["note"] == 'say "hi"\nbye'
        assert parsed["gap"] == ""
        assert parsed["bad_float"] == ""  # NaN normalizes to a blank cell


class TestCampaignCaching:
    """run_campaign against an ArtifactStore: incremental re-execution."""

    @pytest.fixture
    def store(self, tmp_path) -> ArtifactStore:
        return ArtifactStore(tmp_path / "cache")

    @pytest.fixture
    def simulated(self, monkeypatch) -> list:
        """Counting hook: the indices of every point actually simulated."""
        from repro.experiments import campaign as campaign_module

        indices: list[int] = []
        real = campaign_module._evaluate_campaign_point

        def counting(point, session_parallel=None):
            indices.append(point.index)
            return real(point, session_parallel)

        monkeypatch.setattr(campaign_module, "_evaluate_campaign_point", counting)
        return indices

    def test_unchanged_rerun_hits_everything_byte_identically(self, store, simulated):
        campaign = CampaignSpec(**CHEAP)
        cold = run_campaign(campaign, store=store)
        assert (cold.cache_hits, cold.cache_misses) == (0, 8)
        assert sorted(simulated) == list(range(8))
        simulated.clear()
        warm = run_campaign(campaign, store=store)
        assert (warm.cache_hits, warm.cache_misses) == (8, 0)
        assert simulated == []  # zero simulator executions
        assert warm.to_csv() == cold.to_csv()
        assert json.dumps(warm.to_dict()["rows"]) == json.dumps(cold.to_dict()["rows"])

    def test_store_normalization_matches_a_plain_run(self, store):
        campaign = CampaignSpec(**CHEAP)
        assert run_campaign(campaign, store=store).rows == run_campaign(campaign).rows

    def test_uncached_runs_report_no_cache_stats(self):
        result = run_campaign(CampaignSpec(**CHEAP))
        assert result.cache_hits is None and result.cache_misses is None
        assert "cache_hits" not in result.to_dict()

    def test_one_changed_grid_value_reruns_only_that_subgraph(self, store, simulated):
        run_campaign(CampaignSpec(**CHEAP), store=store)
        simulated.clear()
        edited = dict(CHEAP, scenario_grid={"seed": [0, 2], "n_months": [3, 4]})
        result = run_campaign(CampaignSpec(**edited), store=store)
        assert (result.cache_hits, result.cache_misses) == (4, 4)
        assert all(result.points[i].spec.seed == 2 for i in simulated)

    def test_one_changed_param_value_reruns_only_that_subgraph(self, store, simulated):
        base = dict(
            experiments=("shifting",),
            base=ScenarioSpec(n_months=3),
            param_grid={"deferrable": [0.2, 0.4]},
        )
        run_campaign(CampaignSpec(**base), store=store)
        simulated.clear()
        edited = dict(base, param_grid={"deferrable": [0.2, 0.5]})
        result = run_campaign(CampaignSpec(**edited), store=store)
        assert (result.cache_hits, result.cache_misses) == (1, 1)
        assert [result.points[i].params["deferrable"] for i in simulated] == [0.5]

    def test_code_version_change_invalidates_everything(self, store, simulated, monkeypatch):
        campaign = CampaignSpec(**CHEAP)
        run_campaign(campaign, store=store)
        simulated.clear()
        monkeypatch.setenv(CODE_VERSION_ENV, "0.0-rekeyed")
        result = run_campaign(campaign, store=store)
        assert (result.cache_hits, result.cache_misses) == (0, 8)
        assert len(simulated) == 8

    def test_corrupt_artifact_is_a_miss_not_a_crash(self, store, simulated):
        campaign = CampaignSpec(**CHEAP)
        cold = run_campaign(campaign, store=store)
        store.path_for(run_key(campaign.expand()[0])).write_text("not json at all")
        simulated.clear()
        warm = run_campaign(campaign, store=store)
        assert (warm.cache_hits, warm.cache_misses) == (7, 1)
        assert simulated == [0]  # only the clobbered point resimulated
        assert store.corrupt_reads == 1
        assert warm.to_csv() == cold.to_csv()

    def test_force_recomputes_every_point(self, store, simulated):
        campaign = CampaignSpec(**CHEAP)
        run_campaign(campaign, store=store)
        simulated.clear()
        result = run_campaign(campaign, store=store, force=True)
        assert (result.cache_hits, result.cache_misses) == (0, 8)
        assert sorted(simulated) == list(range(8))

    def test_cached_campaign_in_worker_processes(self, store):
        # The store path dispatches misses through the same parallel map.
        campaign = CampaignSpec(**CHEAP)
        cold = run_campaign(campaign, TWO_WORKERS, store=store)
        assert (cold.cache_hits, cold.cache_misses) == (0, 8)
        warm = run_campaign(campaign, TWO_WORKERS, store=store)
        assert (warm.cache_hits, warm.cache_misses) == (8, 0)
        assert warm.rows == cold.rows


class TestRewiredAnalyses:
    """The sweep-shaped analyses give identical results serially and in processes."""

    def test_powercap_tradeoff_parallel_matches_serial(self):
        from repro.scheduler.powercap import powercap_energy_tradeoff

        caps = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)
        serial = powercap_energy_tradeoff("V100", caps)
        parallel = powercap_energy_tradeoff("V100", caps, parallel=TWO_WORKERS)
        assert serial == parallel
        assert [p.cap_fraction for p in serial] == list(caps)

    def test_powercap_tradeoff_empty_caps_returns_empty(self):
        from repro.scheduler.powercap import powercap_energy_tradeoff

        assert powercap_energy_tradeoff("V100", ()) == []

    def test_stress_battery_parallel_matches_serial(self):
        from repro.core.stress import StressTestHarness

        harness = StressTestHarness(n_months=2, seed=3)
        serial = harness.run_battery()
        parallel = harness.run_battery(parallel=TWO_WORKERS)
        assert serial == parallel
        assert list(serial) == list(parallel)  # same scenario order

    def test_optimizer_parallel_matches_serial(self):
        from repro.experiments import ExperimentSession

        session = ExperimentSession(ScenarioSpec(n_months=2))
        jobs = session.job_trace(n_jobs=20, horizon_h=24.0)
        serial = session.optimize_operations(jobs, horizon_h=24.0)
        parallel = session.optimize_operations(jobs, horizon_h=24.0, parallel=TWO_WORKERS)
        assert [e.point for e in serial.evaluated] == [e.point for e in parallel.evaluated]
        assert [e.evaluation.objective_value for e in serial.evaluated] == [
            e.evaluation.objective_value for e in parallel.evaluated
        ]
        assert serial.best.point == parallel.best.point

    def test_optimize_experiment_validates_policies_against_registry(self):
        from repro.experiments import ExperimentSession

        session = ExperimentSession(ScenarioSpec(n_months=2))
        with pytest.raises(ConfigurationError, match="registered"):
            session.run("optimize", jobs=5, horizon_days=1.0, policies="warp-speed")

    def test_optimize_experiment_accepts_registry_policy_subset(self):
        from repro.experiments import ExperimentSession

        session = ExperimentSession(ScenarioSpec(n_months=2))
        result = session.run("optimize", jobs=10, horizon_days=1.0, policies="fifo,backfill")
        labels = result.column("operating_point")
        assert labels and all(l.split("/")[0] in ("fifo", "backfill") for l in labels)
