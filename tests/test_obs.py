"""The observability subsystem (repro.obs): recorder, metrics, exporters, wiring.

Covers the observability issue's acceptance bar end to end:

* span recording (nesting, threading, attributes, worker-batch merging) and
  the zero-overhead :data:`~repro.obs.NULL_RECORDER` contract;
* the metrics registry and its Prometheus text exposition;
* exporter round-trips (Chrome ``trace_event`` JSON and NDJSON) plus the
  ``greenhpc obs`` digest;
* a traced **two-site parallel fleet run** whose exported Chrome trace shows
  per-site ``fleet.site_advance`` spans on per-worker timelines;
* a warm cached campaign whose trace shows cache-hit point events and **no**
  ``campaign.simulate`` span;
* parity: tracing must not change simulation results, and checkpoints taken
  with tracing on must restore with tracing off (and vice versa).
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.artifacts import ArtifactStore
from repro.config import FacilityConfig
from repro.cluster.resources import Cluster
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.errors import ConfigurationError, DataError
from repro.experiments import CampaignSpec, ExperimentSession, run_campaign
from repro.fleet import FleetSimulator, get_fleet
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_RECORDER,
    RunProfile,
    TraceRecorder,
    chrome_trace,
    get_recorder,
    load_trace,
    recording,
    set_recorder,
    summarize_trace,
    write_trace,
)
from repro.parallel import ParallelConfig
from repro.scheduler.backfill import BackfillScheduler
from repro.scheduler.job import Job


@pytest.fixture(autouse=True)
def _ambient_off():
    """Every test starts and ends with tracing disabled."""
    set_recorder(NULL_RECORDER)
    yield
    set_recorder(NULL_RECORDER)


# ---------------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------------


class TestRecorder:
    def test_nesting_links_parent_and_depth(self):
        rec = TraceRecorder()
        with rec.span("outer", kind="root"):
            with rec.span("inner"):
                pass
        inner, outer = rec.spans  # completion order: inner finishes first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert (outer.depth, inner.depth) == (0, 1)
        assert outer.parent_id is None
        assert outer.attributes == {"kind": "root"}
        assert inner.wall_s >= 0.0 and outer.wall_s >= inner.wall_s

    def test_set_chains_mid_span_attributes(self):
        rec = TraceRecorder()
        with rec.span("s") as span:
            span.set("a", 1).set("b", "two")
        assert rec.spans[0].attributes == {"a": 1, "b": "two"}

    def test_event_is_a_zero_ish_duration_span(self):
        rec = TraceRecorder()
        record = rec.event("tick", index=3)
        assert record.name == "tick"
        assert record.attributes == {"index": 3}
        assert record.wall_s < 0.1

    def test_mark_and_spans_since(self):
        rec = TraceRecorder()
        rec.event("before")
        mark = rec.mark()
        rec.event("after")
        assert [s.name for s in rec.spans_since(mark)] == ["after"]
        assert len(rec) == 2

    def test_cpu_time_opt_in(self):
        assert TraceRecorder().event("e").cpu_s is None
        assert TraceRecorder(cpu_time=True).event("e").cpu_s is not None

    def test_threads_keep_independent_stacks(self):
        rec = TraceRecorder()
        done = threading.Event()

        def worker():
            with rec.span("thread-span"):
                done.wait(timeout=5)

        thread = threading.Thread(target=worker)
        with rec.span("main-span"):
            thread.start()
            done.set()
            thread.join(timeout=5)
        by_name = {s.name: s for s in rec.spans}
        # The thread's span must NOT have picked up the main thread's open span.
        assert by_name["thread-span"].parent_id is None
        assert by_name["thread-span"].tid != by_name["main-span"].tid

    def test_extend_remaps_ids_and_preserves_in_batch_parents(self):
        source, target = TraceRecorder(), TraceRecorder()
        with source.span("parent"):
            with source.span("child"):
                pass
        target.event("existing")
        merged = target.extend(source.spans)
        child = next(s for s in merged if s.name == "child")
        parent = next(s for s in merged if s.name == "parent")
        assert child.parent_id == parent.span_id
        ids = [s.span_id for s in target.spans]
        assert len(ids) == len(set(ids)) == 3

    def test_null_recorder_records_nothing(self):
        span = NULL_RECORDER.span("anything", x=1)
        with span as inner:
            assert inner.set("k", "v") is inner
        assert inner.record is None
        assert NULL_RECORDER.span("again") is span  # one shared instance
        assert NULL_RECORDER.enabled is False
        assert len(NULL_RECORDER) == 0 and NULL_RECORDER.spans == []
        assert NULL_RECORDER.extend([]) == []

    def test_ambient_default_and_recording_context(self):
        assert get_recorder() is NULL_RECORDER
        rec = TraceRecorder()
        with recording(rec) as active:
            assert active is rec and get_recorder() is rec
        assert get_recorder() is NULL_RECORDER


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", help="jobs")
        counter.inc()
        counter.inc(2.0)
        assert counter.value == 3.0
        gauge = registry.gauge("depth")
        gauge.set(5.0)
        gauge.inc(-2.0)
        assert gauge.value == 3.0
        hist = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        assert hist.count == 3 and hist.total == pytest.approx(5.55)
        assert hist.mean == pytest.approx(5.55 / 3)
        assert (hist.min, hist.max) == (0.05, 5.0)

    def test_get_or_create_and_label_series(self):
        registry = MetricsRegistry()
        a = registry.counter("reqs", route="health")
        b = registry.counter("reqs", route="health")
        c = registry.counter("reqs", route="metrics")
        assert a is b and a is not c
        a.inc()
        snapshot = registry.snapshot()
        series = snapshot["reqs"]["series"]
        assert {tuple(sorted(s["labels"].items())) for s in series} == {
            (("route", "health"),),
            (("route", "metrics"),),
        }

    def test_kind_conflict_and_negative_inc_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.counter("x").inc(-1.0)

    def test_prometheus_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", help="requests", route="a b").inc(2)
        registry.gauge("queue_depth").set(7)
        registry.histogram("wait_seconds", buckets=(1.0, 10.0)).observe(3.0)
        text = registry.to_prometheus()
        assert "# HELP reqs_total requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{route="a b"} 2.0' in text
        assert "queue_depth 7.0" in text
        # Cumulative buckets: the +Inf bucket equals the count.
        assert 'wait_seconds_bucket{le="1.0"} 0' in text
        assert 'wait_seconds_bucket{le="10.0"} 1' in text
        assert 'wait_seconds_bucket{le="+Inf"} 1' in text
        assert "wait_seconds_count 1" in text
        assert text.endswith("\n")

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# ---------------------------------------------------------------------------
# Exporters and the obs digest
# ---------------------------------------------------------------------------


def _sample_recorder() -> TraceRecorder:
    rec = TraceRecorder()
    with rec.span("run", mode="test"):
        with rec.span("step", index=0):
            pass
        with rec.span("step", index=1):
            pass
    rec.metrics.counter("things_total", help="things").inc(4)
    return rec


class TestExporters:
    def test_chrome_trace_structure(self):
        rec = _sample_recorder()
        document = chrome_trace(rec)
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 3 and len(meta) == 1  # one (pid, tid) track
        assert min(e["ts"] for e in complete) == 0.0  # normalized to t0
        run = next(e for e in complete if e["name"] == "run")
        assert run["args"] == {"mode": "test"}
        assert document["otherData"]["metrics"]["things_total"]["kind"] == "counter"
        json.dumps(document)  # strict-JSON serializable

    def test_round_trip_both_formats(self, tmp_path):
        rec = _sample_recorder()
        for name, fmt in (("t.json", "chrome"), ("t.ndjson", "ndjson")):
            path = str(tmp_path / name)
            assert write_trace(rec, path) == fmt
            loaded = load_trace(path)
            assert loaded["format"] == fmt
            # Exporters write spans in start order, so the root comes first.
            assert [s["name"] for s in loaded["spans"]] == ["run", "step", "step"]
            assert loaded["metrics"]["things_total"]["series"][0]["value"] == 4.0

    def test_load_trace_rejects_empty_and_garbage(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(DataError, match="empty"):
            load_trace(str(empty))
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not a trace at {{{\n")
        with pytest.raises(DataError):
            load_trace(str(garbage))

    def test_load_trace_missing_file_is_a_data_error(self, tmp_path):
        # The CLI maps GreenHPCError to `greenhpc: error: ...` + exit 1; a
        # raw FileNotFoundError would escape as a traceback instead.
        with pytest.raises(DataError, match="cannot read"):
            load_trace(str(tmp_path / "nope.json"))

    def test_summarize_trace_digest(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_trace(_sample_recorder(), path)
        summary = summarize_trace(load_trace(path), top=2)
        assert summary["n_spans"] == 3 and summary["n_tracks"] == 1
        phases = {p["name"]: p for p in summary["phases"]}
        assert phases["step"]["count"] == 2
        assert phases["run"]["share"] == pytest.approx(1.0)  # largest aggregate
        assert len(summary["top_spans"]) == 2
        with pytest.raises(ConfigurationError):
            summarize_trace(load_trace(path), top=0)


class TestRunProfile:
    def test_from_spans_and_lookup(self):
        rec = _sample_recorder()
        profile = RunProfile.from_spans(rec.spans, metrics=rec.metrics.snapshot())
        assert profile.n_spans == 3
        assert profile.phase("step")["count"] == 2
        assert profile.phase("missing") is None
        # Default total: the parent-less root span(s).
        run_span = next(s for s in rec.spans if s.name == "run")
        assert profile.total_s == pytest.approx(run_span.wall_s)
        payload = profile.to_dict()
        assert payload["n_spans"] == 3 and "phases" in payload
        json.dumps(payload)


# ---------------------------------------------------------------------------
# Instrumentation wiring: simulator, fleet, campaign, CLI
# ---------------------------------------------------------------------------

FACILITY = FacilityConfig(n_nodes=2, gpus_per_node=4)


def _jobs(n=6):
    return [
        Job(job_id=f"j{i}", user_id="u", n_gpus=1, duration_h=2.0, submit_time_h=float(i))
        for i in range(n)
    ]


def _simulator(**kwargs) -> ClusterSimulator:
    return ClusterSimulator(
        Cluster(FACILITY), BackfillScheduler(), SimulationConfig(horizon_h=24.0), **kwargs
    )


class TestSimulatorInstrumentation:
    def test_traced_run_records_spans_and_metrics(self):
        rec = TraceRecorder()
        with recording(rec):
            simulator = _simulator()
            simulator.begin(_jobs())
            simulator.advance(12.0)
            result = simulator.finalize()
        names = {s.name for s in rec.spans}
        assert {"sim.begin", "sim.advance", "sim.finalize"} <= names
        snapshot = rec.metrics.snapshot()
        assert snapshot["sim_jobs_finished_total"]["series"][0]["value"] == 6.0
        assert snapshot["sim_ticks_total"]["series"][0]["value"] > 0
        assert result.completed_jobs == 6

    def test_traced_results_match_untraced(self):
        untraced = _simulator().run(_jobs())
        with recording(TraceRecorder()):
            traced = _simulator().run(_jobs())
        assert traced.job_records == untraced.job_records
        assert traced.it_energy_kwh == untraced.it_energy_kwh

    def test_snapshot_portable_across_tracing_modes(self):
        # Checkpoint with tracing ON (a transient MetricsObserver attached)...
        with recording(TraceRecorder()):
            source = _simulator()
            source.begin(_jobs())
            source.advance(6.0)
            snapshot = source.snapshot()
        # ...must restore with tracing OFF (no MetricsObserver), and vice versa.
        plain = _simulator()
        plain.restore(snapshot)
        resumed = plain.finalize()
        reference = _simulator().run(_jobs())
        assert resumed.job_records == reference.job_records
        plain2 = _simulator()
        plain2.begin(_jobs())
        plain2.advance(6.0)
        with recording(TraceRecorder()):
            traced2 = _simulator()
            traced2.restore(plain2.snapshot())


class TestFleetInstrumentation:
    HORIZON_H = 48.0

    def _duo(self):
        fleet = get_fleet("duo-climate-small").with_member_overrides(n_months=2, seed=7)
        session = ExperimentSession(fleet.members[0])
        trace = session.job_trace(
            n_jobs=40, horizon_h=self.HORIZON_H, spec=fleet.members[0]
        )
        for member in fleet.members:
            session.scenario(member)
        return fleet, session, trace

    def _run(self, fleet, session, trace, *, workers=None):
        parallel = None if workers is None else ParallelConfig(n_workers=workers)
        return FleetSimulator(
            fleet,
            policy="backfill",
            horizon_h=self.HORIZON_H,
            parallel=parallel,
            session=session,
        ).run(trace)

    def test_traced_parallel_duo_exports_per_site_chrome_spans(self, tmp_path):
        """Acceptance gate: 2-site parallel run -> per-site spans on worker tracks."""
        fleet, session, trace = self._duo()
        rec = TraceRecorder()
        with recording(rec):
            result = self._run(fleet, session, trace, workers=2)
        assert result.step_timings.mode == "parallel"
        path = str(tmp_path / "fleet-trace.json")
        write_trace(rec, path)
        loaded = load_trace(path)
        assert loaded["format"] == "chrome"
        site_spans = [s for s in loaded["spans"] if s["name"] == "fleet.site_advance"]
        assert {s["attributes"]["site"] for s in site_spans} == {
            member.name for member in fleet.members
        }
        # Worker spans live on non-coordinator timelines in the merged trace.
        assert os.getpid() not in {s["pid"] for s in site_spans}
        assert {s["name"] for s in loaded["spans"]} >= {
            "fleet.run",
            "fleet.route",
            "fleet.advance",
            "fleet.site_advance",
        }

    def test_untraced_run_still_carries_timings_and_profile(self):
        fleet, session, trace = self._duo()
        result = self._run(fleet, session, trace)
        timings = result.step_timings
        assert timings.mode == "serial" and timings.total_s > 0.0
        assert len(timings.site_advance_s) == 2
        assert sum(timings.site_advance_s) > 0.0
        assert result.profile is not None
        assert result.profile.phase("fleet.site_advance")["count"] > 0
        # The private fleet recorder must not leak into the ambient one.
        assert get_recorder() is NULL_RECORDER

    def test_traced_serial_matches_untraced_bit_for_bit(self):
        fleet, session, trace = self._duo()
        untraced = self._run(fleet, session, trace)
        with recording(TraceRecorder()):
            traced = self._run(fleet, session, trace)
        assert traced.assignments == untraced.assignments
        for mine, theirs in zip(traced.site_results, untraced.site_results):
            assert mine.job_records == theirs.job_records


class TestCampaignInstrumentation:
    CAMPAIGN = dict(
        experiments=("table1",), scenario_grid={"seed": [0, 1], "n_months": [3]}
    )

    def test_warm_store_trace_shows_hits_and_no_simulate_span(self, tmp_path):
        """Acceptance gate: cached points leave hit markers, never a simulate span."""
        campaign = CampaignSpec(**self.CAMPAIGN)
        store = ArtifactStore(tmp_path / "cache")
        cold = run_campaign(campaign, store=store)
        assert cold.cache_misses == 2
        rec = TraceRecorder()
        with recording(rec):
            warm = run_campaign(campaign, store=store)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        names = [s.name for s in rec.spans]
        assert "campaign.simulate" not in names
        points = [s for s in rec.spans if s.name == "campaign.point"]
        assert len(points) == 2
        assert all(s.attributes["cache"] == "hit" for s in points)
        run_span = next(s for s in rec.spans if s.name == "campaign.run")
        assert run_span.attributes["cache_hits"] == 2
        assert warm.profile is not None and "profile" in warm.to_dict()

    def test_cold_traced_run_spans_and_cache_neutrality(self, tmp_path):
        campaign = CampaignSpec(**self.CAMPAIGN)
        store = ArtifactStore(tmp_path / "cache")
        rec = TraceRecorder()
        with recording(rec):
            cold = run_campaign(campaign, store=store)
        names = [s.name for s in rec.spans]
        assert "campaign.simulate" in names
        misses = [
            s
            for s in rec.spans
            if s.name == "campaign.point" and s.attributes["cache"] == "miss"
        ]
        assert len(misses) == 2
        # (table1 is analytic — no simulator spans; sim.* coverage lives in
        # TestSimulatorInstrumentation.)
        assert {"campaign.evaluate", "experiment.run"} <= set(names)
        # Cached artifacts must be identical to untraced ones: a traced cold
        # store warms an untraced rerun completely.
        follow_up = run_campaign(campaign, store=store)
        assert follow_up.cache_hits == 2
        assert follow_up.rows == cold.rows
        assert follow_up.profile is None and "profile" not in follow_up.to_dict()


class TestCliTracing:
    def test_trace_out_and_obs_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "run.json")
        assert main(["table1", "--months", "3", "--trace-out", trace_path]) == 0
        err = capsys.readouterr().err
        assert "wrote chrome trace" in err and trace_path in err
        assert get_recorder() is NULL_RECORDER  # recorder uninstalled on exit
        assert main(["obs", trace_path]) == 0
        out = capsys.readouterr().out
        assert "experiment.run" in out and "Per-phase totals" in out
        assert main(["obs", trace_path, "--json", "--top", "3"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["format"] == "chrome"
        assert len(summary["top_spans"]) <= 3
        assert summary["phases"]

    def test_obs_on_missing_and_bad_files_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert main(["obs", str(empty)]) == 1
        assert "greenhpc: error:" in capsys.readouterr().err

    def test_ndjson_suffix_selects_ndjson(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "run.ndjson")
        assert main(["table1", "--months", "3", "--trace-out", trace_path]) == 0
        capsys.readouterr()
        rows = [json.loads(line) for line in open(trace_path)]
        assert rows[0]["type"] == "meta"
        assert any(row["type"] == "span" for row in rows)
