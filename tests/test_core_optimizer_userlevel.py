"""Tests for the Eq. 1 optimizer and the Eq. 2 per-user decomposition."""

import pytest

from repro.config import FacilityConfig
from repro.cluster.cooling import CoolingModel
from repro.cluster.resources import Cluster
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.core.levers import OperatingPoint
from repro.core.objective import ActivityConstraint, ActivityKind, EnergyObjective
from repro.core.optimizer import DatacenterOptimizer
from repro.core.user_level import per_user_decomposition
from repro.errors import OptimizationError
from repro.scheduler.backfill import BackfillScheduler


FACILITY = FacilityConfig(n_nodes=8, gpus_per_node=2)


@pytest.fixture(scope="module")
def optimizer(small_weather, small_grid):
    return DatacenterOptimizer(
        FACILITY,
        EnergyObjective(),
        ActivityConstraint(ActivityKind.DELIVERED_GPU_HOURS, alpha=0.0),
        simulation_config=SimulationConfig(horizon_h=5 * 24.0),
        weather_hourly_c=small_weather,
        cooling=CoolingModel(),
        grid=small_grid,
    )


@pytest.fixture(scope="module")
def trace(small_facility):
    from repro.workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator

    generator = SuperCloudTraceGenerator(SuperCloudTraceConfig(facility=FACILITY), seed=11)
    return generator.generate_jobs(n_jobs=60, horizon_h=3 * 24.0)


class TestDatacenterOptimizer:
    def test_evaluate_point_runs(self, optimizer, trace):
        evaluated = optimizer.evaluate_point(OperatingPoint(policy_name="backfill"), trace)
        assert evaluated.evaluation.objective_value > 0
        assert evaluated.result.completed_jobs > 0

    def test_supply_fraction_drains_nodes(self, optimizer, trace):
        full = optimizer.evaluate_point(OperatingPoint(supply_fraction=1.0), trace)
        reduced = optimizer.evaluate_point(OperatingPoint(supply_fraction=0.5), trace)
        # Draining idle nodes removes their idle power from the bill.
        assert reduced.result.it_energy_kwh < full.result.it_energy_kwh

    def test_optimize_picks_feasible_minimum(self, optimizer, trace):
        points = [
            OperatingPoint(policy_name="backfill"),
            OperatingPoint(policy_name="energy-aware", power_cap_fraction=0.7),
            OperatingPoint(policy_name="energy-aware", power_cap_fraction=0.7, supply_fraction=0.75),
        ]
        outcome = optimizer.optimize(trace, points)
        assert outcome.best is not None
        objective_values = [e.evaluation.objective_value for e in outcome.feasible_points]
        assert outcome.best.evaluation.objective_value == pytest.approx(min(objective_values))
        assert outcome.baseline is not None
        assert 0.0 <= outcome.savings_vs_baseline() < 1.0
        assert len(outcome.frontier_records()) == len(outcome.evaluated)

    def test_infeasible_activity_floor_yields_no_best(self, small_weather, small_grid, trace):
        impossible = DatacenterOptimizer(
            FACILITY,
            EnergyObjective(),
            ActivityConstraint(ActivityKind.DELIVERED_GPU_HOURS, alpha=1e9),
            simulation_config=SimulationConfig(horizon_h=5 * 24.0),
            weather_hourly_c=small_weather,
            cooling=CoolingModel(),
            grid=small_grid,
        )
        outcome = impossible.optimize(trace, [OperatingPoint(policy_name="backfill")])
        assert outcome.best is None
        assert outcome.savings_vs_baseline() == 0.0

    def test_empty_inputs_rejected(self, optimizer, trace):
        with pytest.raises(OptimizationError):
            optimizer.optimize([], [OperatingPoint()])
        with pytest.raises(OptimizationError):
            optimizer.optimize(trace, [])

    def test_jobs_are_cloned_not_mutated(self, optimizer, trace):
        optimizer.evaluate_point(OperatingPoint(), trace)
        assert all(job.is_pending for job in trace)


class TestPerUserDecomposition:
    @pytest.fixture(scope="class")
    def result(self, job_trace, small_facility):
        simulator = ClusterSimulator(
            Cluster(small_facility),
            BackfillScheduler(),
            SimulationConfig(horizon_h=8 * 24.0),
        )
        return simulator.run([j.clone_pending() for j in job_trace])

    def test_energy_identity_holds(self, result):
        accounting = per_user_decomposition(result)
        assert accounting.verify_identity(tolerance=1e-6)
        assert accounting.attributed_energy_kwh <= accounting.total_facility_energy_kwh + 1e-6

    def test_every_user_present(self, result):
        accounting = per_user_decomposition(result)
        users_in_trace = {r.user_id for r in result.job_records}
        assert set(accounting.profiles) == users_in_trace

    def test_idle_overhead_positive(self, result):
        """A mostly idle cluster burns power no user is responsible for."""
        accounting = per_user_decomposition(result)
        assert accounting.idle_overhead_kwh > 0
        assert 0.0 < accounting.attribution_fraction < 1.0

    def test_heaviest_users_sorted(self, result):
        accounting = per_user_decomposition(result)
        top = accounting.heaviest_users(3)
        energies = [p.facility_energy_kwh for p in top]
        assert energies == sorted(energies, reverse=True)

    def test_energy_concentration_bounds(self, result):
        accounting = per_user_decomposition(result)
        share = accounting.energy_concentration(0.2)
        assert 0.0 < share <= 1.0
        assert accounting.energy_concentration(1.0) == pytest.approx(1.0)
        with pytest.raises(OptimizationError):
            accounting.energy_concentration(0.0)

    def test_per_user_metrics(self, result):
        accounting = per_user_decomposition(result)
        profile = next(iter(accounting.profiles.values()))
        assert profile.n_jobs >= profile.completed_jobs
        assert profile.it_energy_kwh <= profile.facility_energy_kwh + 1e-12
