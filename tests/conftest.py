"""Shared fixtures for the test suite.

Fixtures build *small* versions of the simulation world (a 2-month calendar,
a 8-16 node facility, 60-120 job traces) so that the full suite runs in well
under a minute while still exercising every subsystem end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.climate.weather import WeatherModel
from repro.config import FacilityConfig
from repro.grid.iso_ne import IsoNeLikeGrid
from repro.timeutils import SimulationCalendar
from repro.workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator


@pytest.fixture(scope="session")
def small_calendar() -> SimulationCalendar:
    """A two-month calendar starting January 2020 (1464 hours)."""
    return SimulationCalendar(start_year=2020, n_months=2)


@pytest.fixture(scope="session")
def year_calendar() -> SimulationCalendar:
    """A full-year calendar for seasonal tests."""
    return SimulationCalendar(start_year=2020, n_months=12)


@pytest.fixture(scope="session")
def two_year_calendar() -> SimulationCalendar:
    """The paper's 2020-2021 window."""
    return SimulationCalendar(start_year=2020, n_months=24)


@pytest.fixture(scope="session")
def small_facility() -> FacilityConfig:
    """A 16-node, 32-GPU facility for fast simulator tests."""
    return FacilityConfig(n_nodes=16, gpus_per_node=2)


@pytest.fixture(scope="session")
def small_weather(small_calendar) -> np.ndarray:
    """Hourly temperatures for the small calendar."""
    return WeatherModel(seed=7).hourly_temperature_c(small_calendar)


@pytest.fixture(scope="session")
def small_grid(small_calendar) -> IsoNeLikeGrid:
    """A grid model covering the small calendar."""
    return IsoNeLikeGrid(small_calendar, seed=7)


@pytest.fixture(scope="session")
def year_grid(year_calendar) -> IsoNeLikeGrid:
    """A grid model covering a full year."""
    return IsoNeLikeGrid(year_calendar, seed=7)


@pytest.fixture(scope="session")
def job_trace(small_facility):
    """A 100-job trace over five days for scheduler tests."""
    generator = SuperCloudTraceGenerator(SuperCloudTraceConfig(facility=small_facility), seed=3)
    return generator.generate_jobs(n_jobs=100, horizon_h=5 * 24.0)
