"""Tests for repro.timeutils (simulation calendar)."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.timeutils import (
    MonthIndex,
    SimulationCalendar,
    days_in_month,
    days_in_year,
    hours_in_month,
    hours_in_year,
    is_leap_year,
)


class TestLeapYears:
    def test_2020_is_leap(self):
        assert is_leap_year(2020)

    def test_2021_is_not_leap(self):
        assert not is_leap_year(2021)

    def test_centuries(self):
        assert not is_leap_year(1900)
        assert is_leap_year(2000)

    def test_february_lengths(self):
        assert days_in_month(2020, 2) == 29
        assert days_in_month(2021, 2) == 28

    def test_days_in_year(self):
        assert days_in_year(2020) == 366
        assert days_in_year(2021) == 365

    def test_hours_in_year(self):
        assert hours_in_year(2021) == 8760
        assert hours_in_year(2020) == 8784

    def test_invalid_month_rejected(self):
        with pytest.raises(DataError):
            days_in_month(2020, 13)


class TestMonthIndex:
    def test_label(self):
        assert MonthIndex(2020, 7).label == "Jul 2020"

    def test_next_rolls_over_year(self):
        assert MonthIndex(2020, 12).next() == MonthIndex(2021, 1)

    def test_invalid_month(self):
        with pytest.raises(DataError):
            MonthIndex(2020, 0)


class TestSimulationCalendar:
    def test_total_hours_two_years(self):
        cal = SimulationCalendar(2020, 24)
        assert cal.total_hours == hours_in_year(2020) + hours_in_year(2021)

    def test_month_count(self):
        cal = SimulationCalendar(2020, 5)
        assert len(cal) == 5
        assert [m.month for m in cal] == [1, 2, 3, 4, 5]

    def test_month_start_hours_monotone(self):
        cal = SimulationCalendar(2020, 12)
        starts = [cal.month_start_hour(i) for i in range(12)]
        assert starts == sorted(starts)
        assert starts[0] == 0
        assert starts[1] == 31 * 24

    def test_month_of_hour(self):
        cal = SimulationCalendar(2020, 3)
        assert cal.month_of_hour(0.0) == 0
        assert cal.month_of_hour(31 * 24) == 1
        assert cal.month_of_hour(31 * 24 - 0.5) == 0

    def test_month_of_hour_out_of_range(self):
        cal = SimulationCalendar(2020, 2)
        with pytest.raises(DataError):
            cal.month_of_hour(cal.total_hours)
        with pytest.raises(DataError):
            cal.month_of_hour(-1.0)

    def test_month_indices_vectorized_matches_scalar(self):
        cal = SimulationCalendar(2020, 6)
        hours = np.linspace(0, cal.total_hours - 1, 50)
        vectorized = cal.month_indices_for_hours(hours)
        scalar = np.array([cal.month_of_hour(h) for h in hours])
        np.testing.assert_array_equal(vectorized, scalar)

    def test_hour_grid_length(self):
        cal = SimulationCalendar(2020, 2)
        assert cal.hour_grid(1.0).shape[0] == cal.total_hours

    def test_hour_grid_rejects_bad_step(self):
        with pytest.raises(DataError):
            SimulationCalendar(2020, 1).hour_grid(0.0)

    def test_hour_of_year_resets_in_second_year(self):
        cal = SimulationCalendar(2020, 24)
        first_hour_2021 = cal.month_start_hour(12)
        assert cal.hour_of_year(first_hour_2021) == pytest.approx(0.0)

    def test_day_of_year(self):
        cal = SimulationCalendar(2020, 12)
        assert cal.day_of_year(0.0) == pytest.approx(0.0)
        assert cal.day_of_year(48.0) == pytest.approx(2.0)

    def test_hour_of_day(self):
        cal = SimulationCalendar(2020, 1)
        assert cal.hour_of_day(25.5) == pytest.approx(1.5)

    def test_monthly_mean_constant_series(self):
        cal = SimulationCalendar(2020, 3)
        values = np.full(cal.total_hours, 5.0)
        np.testing.assert_allclose(cal.monthly_mean(values), 5.0)

    def test_monthly_sum_matches_lengths(self):
        cal = SimulationCalendar(2020, 2)
        values = np.ones(cal.total_hours)
        sums = cal.monthly_sum(values)
        assert sums[0] == pytest.approx(31 * 24)
        assert sums[1] == pytest.approx(29 * 24)

    def test_monthly_mean_rejects_wrong_length(self):
        cal = SimulationCalendar(2020, 2)
        with pytest.raises(DataError):
            cal.monthly_mean(np.ones(10))

    def test_labels_and_year_arrays(self):
        cal = SimulationCalendar(2020, 13)
        assert cal.labels()[0] == "Jan 2020"
        assert cal.labels()[-1] == "Jan 2021"
        assert cal.year_array()[-1] == 2021
        assert cal.month_of_year_array()[-1] == 1

    def test_rejects_zero_months(self):
        with pytest.raises(DataError):
            SimulationCalendar(2020, 0)
