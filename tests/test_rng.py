"""Tests for repro.rng (seed derivation and named streams)."""

import numpy as np
import pytest

from repro.rng import DEFAULT_SEED, RngStreams, derive_seed, make_rng, spawn_rngs


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "weather") == derive_seed(42, "weather")

    def test_distinct_names_give_distinct_seeds(self):
        assert derive_seed(42, "weather") != derive_seed(42, "workload")

    def test_distinct_base_seeds_give_distinct_seeds(self):
        assert derive_seed(1, "weather") != derive_seed(2, "weather")

    def test_multiple_name_components(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_non_negative_and_bounded(self):
        for seed in (0, 1, 123456789, -5):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2**63


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7, "grid").uniform(size=5)
        b = make_rng(7, "grid").uniform(size=5)
        np.testing.assert_allclose(a, b)

    def test_different_names_differ(self):
        a = make_rng(7, "grid").uniform(size=5)
        b = make_rng(7, "weather").uniform(size=5)
        assert not np.allclose(a, b)

    def test_none_uses_default_seed(self):
        a = make_rng(None).uniform(size=3)
        b = make_rng(DEFAULT_SEED).uniform(size=3)
        np.testing.assert_allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_generator_with_names_derives_child(self):
        gen = np.random.default_rng(0)
        child = make_rng(gen, "x")
        assert child is not gen


class TestSpawnRngs:
    def test_count(self):
        rngs = spawn_rngs(3, 4)
        assert len(rngs) == 4

    def test_streams_independent(self):
        rngs = spawn_rngs(3, 2)
        a = rngs[0].uniform(size=10)
        b = rngs[1].uniform(size=10)
        assert not np.allclose(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(3, -1)


class TestRngStreams:
    def test_same_name_returns_same_generator(self):
        streams = RngStreams(5)
        assert streams.get("weather") is streams.get("weather")

    def test_different_names_return_different_generators(self):
        streams = RngStreams(5)
        assert streams.get("a") is not streams.get("b")

    def test_reset_single_stream(self):
        streams = RngStreams(5)
        first = streams.get("a").uniform(size=3)
        streams.reset("a")
        second = streams.get("a").uniform(size=3)
        np.testing.assert_allclose(first, second)

    def test_reset_all(self):
        streams = RngStreams(5)
        streams.get("a")
        streams.get("b")
        streams.reset()
        assert list(streams.names()) == []

    def test_names_in_creation_order(self):
        streams = RngStreams(5)
        streams.get("z")
        streams.get("a")
        assert list(streams.names()) == ["z", "a"]

    def test_reproducible_across_instances(self):
        a = RngStreams(11).get("demand").normal(size=4)
        b = RngStreams(11).get("demand").normal(size=4)
        np.testing.assert_allclose(a, b)
