"""Tests for embodied-carbon accounting."""

import pytest

from repro.errors import TrackingError
from repro.tracking.embodied import (
    HARDWARE_FOOTPRINTS,
    EmbodiedCarbonModel,
    HardwareFootprint,
    TotalFootprint,
    get_hardware_footprint,
)


class TestHardwareFootprint:
    def test_catalogue_entries_valid(self):
        for footprint in HARDWARE_FOOTPRINTS.values():
            assert footprint.manufacturing_kg_co2e >= 0
            assert footprint.lifetime_hours > 0

    def test_lookup_case_insensitive(self):
        assert get_hardware_footprint("v100").name == "V100"
        with pytest.raises(TrackingError):
            get_hardware_footprint("abacus")

    def test_amortized_rate(self):
        footprint = HardwareFootprint("X", manufacturing_kg_co2e=100.0, lifetime_years=1.0, typical_utilization=0.5)
        assert footprint.amortized_kg_per_hour() == pytest.approx(100.0 / 8760.0)
        assert footprint.amortized_kg_per_hour(per_useful_hour=True) == pytest.approx(100.0 / 4380.0)

    def test_validation(self):
        with pytest.raises(Exception):
            HardwareFootprint("X", manufacturing_kg_co2e=-1.0)
        with pytest.raises(TrackingError):
            HardwareFootprint("X", manufacturing_kg_co2e=1.0, typical_utilization=0.0)


class TestTotalFootprint:
    def test_shares(self):
        footprint = TotalFootprint(operational_kg=3.0, embodied_kg=1.0)
        assert footprint.total_kg == pytest.approx(4.0)
        assert footprint.embodied_share == pytest.approx(0.25)

    def test_zero_total(self):
        assert TotalFootprint(0.0, 0.0).embodied_share == 0.0


class TestEmbodiedCarbonModel:
    def test_rate_includes_server_share(self):
        solo_gpu = get_hardware_footprint("V100").amortized_kg_per_hour(per_useful_hour=True)
        model = EmbodiedCarbonModel("V100", gpus_per_server=4)
        assert model.embodied_rate_kg_per_gpu_hour() > solo_gpu

    def test_embodied_scales_with_gpu_hours(self):
        model = EmbodiedCarbonModel("A100")
        assert model.embodied_kg(200.0) == pytest.approx(2 * model.embodied_kg(100.0))

    def test_total_footprint_combines_components(self):
        model = EmbodiedCarbonModel("V100")
        footprint = model.total_footprint(
            gpu_hours=100.0, energy_j=100.0 * 250.0 * 3600.0, grid_intensity_g_per_kwh=300.0
        )
        assert footprint.operational_kg > 0
        assert footprint.embodied_kg > 0
        assert footprint.total_kg == pytest.approx(footprint.operational_kg + footprint.embodied_kg)

    def test_embodied_dominates_on_clean_grid(self):
        """On a near-zero-carbon grid the hardware's manufacturing footprint dominates."""
        model = EmbodiedCarbonModel("V100")
        clean = model.total_footprint(gpu_hours=100.0, energy_j=9e7, grid_intensity_g_per_kwh=20.0)
        dirty = model.total_footprint(gpu_hours=100.0, energy_j=9e7, grid_intensity_g_per_kwh=500.0)
        assert clean.embodied_share > dirty.embodied_share
        assert clean.embodied_share > 0.5

    def test_breakeven_intensity_plausible(self):
        model = EmbodiedCarbonModel("V100")
        breakeven = model.breakeven_intensity_g_per_kwh(mean_power_w=250.0)
        # Somewhere between a very clean grid and the world average.
        assert 10.0 < breakeven < 500.0

    def test_validation(self):
        with pytest.raises(TrackingError):
            EmbodiedCarbonModel("V100", gpus_per_server=0)
        with pytest.raises(Exception):
            EmbodiedCarbonModel("V100").embodied_kg(-1.0)
