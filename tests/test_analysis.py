"""Tests for the analysis layer: monthly containers, correlations, figures, Table I."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    best_lag,
    is_monotonic_relationship,
    lagged_cross_correlation,
    pearson_correlation,
    spearman_correlation,
)
from repro.analysis.figures import (
    SuperCloudScenario,
    fig1_compute_trends,
    fig2_power_vs_green_share,
    fig3_price_vs_green_share,
    fig4_power_vs_temperature,
    fig5_energy_vs_deadlines,
)
from repro.analysis.monthly import MonthlySeries, align_monthly, monthly_frame
from repro.analysis.tables import table1_conferences
from repro.errors import DataError


@pytest.fixture(scope="module")
def scenario():
    return SuperCloudScenario.build(seed=0)


class TestMonthlySeries:
    def test_from_hourly(self, small_calendar):
        hourly = np.ones(small_calendar.total_hours) * 3.0
        series = MonthlySeries.from_hourly("x", hourly, small_calendar, how="mean")
        np.testing.assert_allclose(series.values, 3.0)
        assert len(series) == 2

    def test_from_hourly_sum(self, small_calendar):
        hourly = np.ones(small_calendar.total_hours)
        series = MonthlySeries.from_hourly("x", hourly, small_calendar, how="sum")
        assert series.values[0] == pytest.approx(31 * 24)

    def test_invalid_how(self, small_calendar):
        with pytest.raises(DataError):
            MonthlySeries.from_hourly("x", np.ones(small_calendar.total_hours), small_calendar, how="median")

    def test_describe_and_argmax(self):
        series = MonthlySeries("x", np.array([1.0, 5.0, 2.0]), ("Jan 2020", "Feb 2020", "Mar 2020"))
        assert series.describe()["max"] == 5.0
        assert series.argmax_label() == "Feb 2020"
        assert series.argmin_label() == "Jan 2020"

    def test_label_mismatch_rejected(self):
        with pytest.raises(DataError):
            MonthlySeries("x", np.array([1.0, 2.0]), ("Jan 2020",))

    def test_align_and_frame(self):
        labels = ("Jan 2020", "Feb 2020")
        a = MonthlySeries("a", np.array([1.0, 2.0]), labels)
        b = MonthlySeries("b", np.array([3.0, 4.0]), labels)
        frame = monthly_frame([a, b])
        assert set(frame) == {"month", "a", "b"}
        with pytest.raises(DataError):
            align_monthly([a, MonthlySeries("c", np.array([1.0]), ("Jan 2020",))])
        with pytest.raises(DataError):
            monthly_frame([a, MonthlySeries("a", np.array([5.0, 6.0]), labels)])


class TestCorrelation:
    def test_pearson_perfect(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_spearman_monotone_nonlinear(self):
        x = np.arange(1.0, 11.0)
        assert spearman_correlation(x, x**3) == pytest.approx(1.0)

    def test_constant_series_rejected(self):
        with pytest.raises(DataError):
            pearson_correlation(np.ones(5), np.arange(5.0))

    def test_short_series_rejected(self):
        with pytest.raises(DataError):
            pearson_correlation(np.arange(2.0), np.arange(2.0))

    def test_lagged_cross_correlation_finds_shift(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=60)
        x = base[:-3]
        y = base[3:]  # y[t] = x[t+3] shifted back: x leads y by ... x[t] == y[t-3]
        correlations = lagged_cross_correlation(x, y, max_lag=5)
        lag, value = best_lag(x, y, max_lag=5)
        assert lag == -3
        assert value == pytest.approx(1.0)
        assert correlations[-3] == pytest.approx(1.0)

    def test_is_monotonic_relationship(self):
        x = np.arange(12.0)
        assert is_monotonic_relationship(x, x**2)
        rng = np.random.default_rng(1)
        assert not is_monotonic_relationship(x, rng.normal(size=12))

    def test_monotonic_threshold_validation(self):
        with pytest.raises(DataError):
            is_monotonic_relationship(np.arange(5.0), np.arange(5.0), threshold=0.0)


class TestFig1:
    def test_doubling_times(self):
        result = fig1_compute_trends()
        summary = result.summary()
        assert summary["modern_doubling_months"] < 12.0
        assert summary["pre2012_doubling_months"] > 12.0
        assert result.growth_acceleration > 1.0

    def test_scatter_aligned(self):
        result = fig1_compute_trends()
        assert result.years.shape == result.compute_pfs_days.shape == result.is_modern.shape


class TestFig2(object):
    def test_anticorrelation_and_band(self, scenario):
        result = fig2_power_vs_green_share(scenario)
        assert result.correlation < 0
        assert 150.0 < result.monthly_power_kw.min() < result.monthly_power_kw.max() < 550.0
        assert 2.0 < result.monthly_renewable_share_pct.min()
        assert result.monthly_renewable_share_pct.max() < 12.0

    def test_peaks_in_expected_seasons(self, scenario):
        result = fig2_power_vs_green_share(scenario)
        assert result.power_peak_month.split()[0] in {"Jun", "Jul", "Aug"}
        assert result.renewable_peak_month.split()[0] in {"Feb", "Mar", "Apr", "May"}

    def test_mismatch_opportunity_positive(self, scenario):
        assert fig2_power_vs_green_share(scenario).mismatch_opportunity() > 0

    def test_series_helper(self, scenario):
        series = fig2_power_vs_green_share(scenario).series()
        assert [s.name for s in series] == ["avg_power_kw", "solar_wind_share_pct"]


class TestFig3:
    def test_price_anticorrelated_with_green_share(self, scenario):
        result = fig3_price_vs_green_share(scenario)
        assert result.correlation < 0

    def test_price_band_matches_paper(self, scenario):
        low, high = fig3_price_vs_green_share(scenario).price_range
        assert 15.0 < low < 35.0
        assert 35.0 < high < 60.0

    def test_green_months_cheaper(self, scenario):
        assert fig3_price_vs_green_share(scenario).spring_discount() < 0

    def test_cheapest_month_in_spring_window(self, scenario):
        cheapest = fig3_price_vs_green_share(scenario).cheapest_month.split()[0]
        assert cheapest in {"Feb", "Mar", "Apr", "May"}


class TestFig4:
    def test_near_one_to_one(self, scenario):
        result = fig4_power_vs_temperature(scenario)
        assert result.spearman > 0.8
        assert result.pearson > 0.8
        assert result.is_near_one_to_one()

    def test_temperature_in_fahrenheit_band(self, scenario):
        result = fig4_power_vs_temperature(scenario)
        assert result.monthly_temperature_f.min() > 0.0
        assert result.monthly_temperature_f.max() < 100.0


class TestFig5:
    def test_deadline_uplift_positive_and_tracks_upcoming_deadlines(self, scenario):
        result = fig5_energy_vs_deadlines(scenario)
        assert float(np.mean(result.deadline_uplift_mwh)) > 0
        assert result.uplift_vs_upcoming_deadlines_correlation > 0.5
        assert result.anticipation_detected()

    def test_early_2021_pickup_exceeds_2020(self, scenario):
        result = fig5_energy_vs_deadlines(scenario)
        assert result.early_2021_vs_2020_ratio > 1.0

    def test_series_shapes(self, scenario):
        result = fig5_energy_vs_deadlines(scenario)
        assert result.monthly_energy_mwh.shape == (24,)
        assert result.deadlines_per_month.shape == (24,)
        assert result.counterfactual_energy_mwh.shape == (24,)

    def test_requires_two_year_horizon(self):
        short = SuperCloudScenario.build(seed=0, n_months=6)
        with pytest.raises(DataError):
            fig5_energy_vs_deadlines(short)


class TestTable1:
    def test_rows_and_counts(self):
        result = table1_conferences()
        assert result.n_conferences == sum(len(v) for v in result.rows.values())
        assert set(result.rows) == {"NLP/Speech", "Computer Vision", "Robotics", "General ML", "Data Mining"}

    def test_seasonality_stats(self):
        result = table1_conferences()
        assert result.spring_summer_fraction > result.winter_fraction
        assert 1 <= result.busiest_deadline_month() <= 12

    def test_markdown_render(self):
        markdown = table1_conferences().as_markdown()
        assert markdown.startswith("| Area/Discipline | Conferences |")
        assert "NeurIPS" in markdown
