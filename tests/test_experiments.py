"""Tests for the unified experiment API (:mod:`repro.experiments`)."""

import json

import numpy as np
import pytest

from repro.analysis.figures import SuperCloudScenario, fig2_power_vs_green_share
from repro.config import ExperimentConfig, SiteConfig
from repro.core.framework import GreenDatacenterModel
from repro.errors import ConfigurationError, DataError
from repro.experiments import (
    ExperimentResult,
    ExperimentSession,
    ScenarioSpec,
    WorkloadSpec,
    experiment_names,
    get_experiment,
    get_scenario,
    get_site,
    list_experiments,
    register_scenario,
    scenario_names,
    site_names,
)

ALL_EXPERIMENTS = (
    "figures",
    "table1",
    "powercap",
    "shifting",
    "deadlines",
    "stress",
    "schedule",
    "fleet",
    "optimize",
)


class TestScenarioSpec:
    def test_default_spec_is_hashable_and_comparable(self):
        assert ScenarioSpec() == ScenarioSpec()
        assert hash(ScenarioSpec()) == hash(ScenarioSpec())
        assert ScenarioSpec(seed=1) != ScenarioSpec(seed=2)

    def test_replace_returns_modified_copy(self):
        spec = ScenarioSpec().replace(seed=7, n_months=6)
        assert (spec.seed, spec.n_months) == (7, 6)
        assert ScenarioSpec().seed == 0  # original untouched

    def test_replace_unknown_field_raises(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec().replace(horizon=12)

    def test_invalid_horizon_raises(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(n_months=0)

    def test_to_dict_is_strict_json(self):
        payload = json.dumps(ScenarioSpec().to_dict(), allow_nan=False)
        round_tripped = json.loads(payload)
        assert round_tripped["seed"] == 0
        assert round_tripped["facility"]["n_nodes"] == 448
        assert round_tripped["site"]["name"] == "holyoke-ma"

    def test_trace_config_threads_facility_and_workload(self):
        spec = ScenarioSpec(workload=WorkloadSpec(gpu_model="A100", packing_factor=0.5))
        trace_config = spec.trace_config()
        assert trace_config.gpu_model == "A100"
        assert trace_config.packing_factor == 0.5
        assert trace_config.facility == spec.facility


class TestScenarioRegistry:
    def test_builtin_scenarios_registered(self):
        for name in ("default", "paper", "single-year", "hot-climate", "a100-refresh"):
            assert name in scenario_names()
            assert get_scenario(name).name == name

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            get_scenario("nope")

    def test_register_and_duplicate(self):
        spec = ScenarioSpec(name="test-custom-scenario", seed=99, n_months=3)
        register_scenario(spec)
        assert get_scenario("test-custom-scenario") is spec
        with pytest.raises(ConfigurationError):
            register_scenario(spec)
        register_scenario(spec.replace(seed=100), overwrite=True)
        assert get_scenario("test-custom-scenario").seed == 100

    def test_site_registry(self):
        assert "holyoke-ma" in site_names()
        assert get_site("phoenix-az").mean_annual_temperature_c > get_site("holyoke-ma").mean_annual_temperature_c
        with pytest.raises(ConfigurationError):
            get_site("atlantis")


class TestSessionCache:
    def test_same_spec_same_object(self):
        session = ExperimentSession("single-year")
        assert session.scenario() is session.scenario()
        assert session.scenario_builds == 1

    def test_substrates_built_once_across_experiments(self):
        session = ExperimentSession(ScenarioSpec(n_months=6))
        session.run("figures")
        session.run("shifting")
        session.run("deadlines")
        session.run("stress")
        assert session.scenario_builds == 1

    def test_distinct_specs_build_distinct_scenarios(self):
        session = ExperimentSession(ScenarioSpec(n_months=3))
        first = session.scenario()
        other = session.scenario(ScenarioSpec(n_months=3, seed=5))
        assert first is not other
        assert session.scenario_builds == 2

    def test_overrides_apply_to_named_scenario(self):
        session = ExperimentSession("single-year", seed=9)
        assert session.spec.seed == 9
        assert session.spec.n_months == 12

    def test_job_trace_cached_per_parameters(self):
        session = ExperimentSession(ScenarioSpec(n_months=2))
        trace = session.job_trace(n_jobs=20, horizon_h=24.0)
        assert session.job_trace(n_jobs=20, horizon_h=24.0) is trace
        assert len(session.job_trace(n_jobs=10, horizon_h=24.0)) == 10


class TestExperimentResult:
    def test_to_json_round_trip(self):
        session = ExperimentSession(ScenarioSpec(n_months=6))
        result = session.run("figures")
        assert json.loads(result.to_json()) == result.to_dict()
        assert json.loads(result.to_json(indent=2)) == result.to_dict()

    def test_non_finite_values_serialize_to_null(self):
        result = ExperimentResult(
            name="synthetic",
            spec=ScenarioSpec(),
            rows=({"value": float("nan")},),
            scalars={"ratio": float("inf")},
        )
        payload = json.loads(result.to_json())
        assert payload["rows"][0]["value"] is None
        assert payload["scalars"]["ratio"] is None

    def test_scalar_and_column_accessors(self):
        result = ExperimentResult(
            name="synthetic",
            spec=ScenarioSpec(),
            rows=({"a": 1}, {"a": 2, "b": 3}),
            scalars={"total": 3},
        )
        assert result.scalar("total") == 3
        assert result.column("a") == [1, 2]
        assert result.column("b") == [None, 3]
        with pytest.raises(DataError):
            result.scalar("missing")


class TestRegistry:
    def test_all_builtin_experiments_registered(self):
        assert experiment_names() == ALL_EXPERIMENTS
        for definition in list_experiments():
            assert definition.runner is not None

    def test_unknown_experiment_raises(self):
        with pytest.raises(ConfigurationError):
            get_experiment("nope")

    def test_unknown_parameter_rejected(self):
        session = ExperimentSession(ScenarioSpec(n_months=2))
        with pytest.raises(ConfigurationError):
            session.run("shifting", bogus=1)

    def test_choices_validated(self):
        session = ExperimentSession(ScenarioSpec(n_months=2))
        with pytest.raises(ConfigurationError):
            session.run("shifting", signal="vibes")

    def test_every_experiment_returns_uniform_result(self):
        session = ExperimentSession(ScenarioSpec(n_months=6))
        params = {
            "optimize": {"jobs": 25, "horizon_days": 2.0},
            "schedule": {"jobs": 25, "horizon_days": 2.0},
            "fleet": {"jobs": 25, "horizon_days": 2.0},
        }
        results = session.run_many(ALL_EXPERIMENTS, params_by_name=params)
        for name, result in results.items():
            assert isinstance(result, ExperimentResult)
            assert result.name == name
            assert result.spec == session.spec
            assert result.rows  # every analysis produces tabular output
        # The base world builds once; the fleet experiment adds one build per
        # member site of its (tri-site) fleet, cached on the same session.
        assert session.scenario_builds == 1 + 3


class TestShimEquivalence:
    def test_model_scenario_matches_direct_build(self):
        model = GreenDatacenterModel(experiment=ExperimentConfig(seed=11, n_months=12))
        direct = SuperCloudScenario.build(seed=11, start_year=2020, n_months=12)
        np.testing.assert_allclose(
            model.scenario.load_trace.monthly_power_kw, direct.load_trace.monthly_power_kw
        )
        np.testing.assert_allclose(model.scenario.weather_hourly_c, direct.weather_hourly_c)
        assert (
            fig2_power_vs_green_share(model.scenario).correlation
            == fig2_power_vs_green_share(direct).correlation
        )

    def test_model_matches_session_experiment(self):
        config = ExperimentConfig(seed=11, n_months=12)
        model = GreenDatacenterModel(experiment=config)
        session = ExperimentSession(ScenarioSpec(seed=11, n_months=12))
        figures = session.run("figures")
        assert figures.scalar("fig2_correlation") == model.monthly_figures()["fig2"].correlation
        shifting = session.run("shifting")
        assert dict(model.load_shifting().summary()) == dict(shifting.rows[0])

    def test_model_stress_matches_session_experiment(self):
        config = ExperimentConfig(seed=3, n_months=4)
        model_results = GreenDatacenterModel(experiment=config).stress_tests()
        stress = ExperimentSession(ScenarioSpec(seed=3, n_months=4)).run("stress")
        by_name = {row["scenario"]: row for row in stress.rows}
        assert set(by_name) == set(model_results)
        for name, result in model_results.items():
            assert by_name[name]["hours_cooling_overloaded"] == result.hours_cooling_overloaded

    def test_model_deadline_options_honor_facility(self):
        from repro.config import FacilityConfig

        config = ExperimentConfig(seed=0, n_months=4)
        facility = FacilityConfig(n_nodes=64)
        model = GreenDatacenterModel(experiment=config, facility=facility)
        shim = model.deadline_options()["actual"].total_energy_mwh
        session = ExperimentSession(ScenarioSpec(seed=0, n_months=4, facility=facility))
        rows = {row["option"]: row for row in session.run("deadlines").rows}
        assert shim == pytest.approx(rows["actual"]["energy_mwh"])
        # A 64-node facility must not report 448-node energy totals.
        default_model = GreenDatacenterModel(experiment=config)
        assert shim < default_model.deadline_options()["actual"].total_energy_mwh / 2

    def test_model_honors_site(self):
        hot = GreenDatacenterModel(site=get_site("phoenix-az"))
        cold = GreenDatacenterModel(site=get_site("reykjavik-is"))
        assert float(np.mean(hot.scenario.weather_hourly_c)) > float(
            np.mean(cold.scenario.weather_hourly_c)
        )
