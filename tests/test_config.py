"""Tests for repro.config (validation helpers and shared configs)."""

import pytest

from repro.config import (
    ExperimentConfig,
    FacilityConfig,
    SiteConfig,
    config_replace,
    config_to_dict,
    require_fraction,
    require_in_range,
    require_non_negative,
    require_positive,
)
from repro.errors import ConfigurationError


class TestValidators:
    def test_require_positive_accepts(self):
        assert require_positive(0.5, "x") == 0.5

    def test_require_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            require_positive(0.0, "x")

    def test_require_non_negative(self):
        assert require_non_negative(0.0, "x") == 0.0
        with pytest.raises(ConfigurationError):
            require_non_negative(-0.1, "x")

    def test_require_fraction(self):
        assert require_fraction(1.0, "x") == 1.0
        assert require_fraction(0.0, "x") == 0.0
        with pytest.raises(ConfigurationError):
            require_fraction(1.2, "x")

    def test_require_in_range(self):
        assert require_in_range(5.0, 0.0, 10.0, "x") == 5.0
        with pytest.raises(ConfigurationError):
            require_in_range(11.0, 0.0, 10.0, "x")


class TestSiteConfig:
    def test_defaults_valid(self):
        site = SiteConfig()
        assert site.grid_region == "ISO-NE"

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            SiteConfig(name="")

    def test_rejects_bad_latitude(self):
        with pytest.raises(ConfigurationError):
            SiteConfig(latitude_deg=120.0)

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ConfigurationError):
            SiteConfig(seasonal_temperature_amplitude_c=-1.0)


class TestFacilityConfig:
    def test_total_gpus(self):
        facility = FacilityConfig(n_nodes=10, gpus_per_node=4)
        assert facility.total_gpus == 40

    def test_default_is_supercloud_scale(self):
        facility = FacilityConfig()
        assert facility.total_gpus >= 500

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            FacilityConfig(n_nodes=0)

    def test_rejects_pue_below_one(self):
        with pytest.raises(ConfigurationError):
            FacilityConfig(baseline_pue=0.9)

    def test_rejects_negative_idle_power(self):
        with pytest.raises(ConfigurationError):
            FacilityConfig(node_idle_power_w=-5.0)


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.n_months == 24
        assert config.start_year == 2020

    def test_rejects_zero_months(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(n_months=0)

    def test_rejects_implausible_year(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(start_year=1800)

    def test_rejects_non_positive_step(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(time_step_s=0.0)


class TestConfigHelpers:
    def test_config_to_dict(self):
        d = config_to_dict(FacilityConfig(n_nodes=3, gpus_per_node=2))
        assert d["n_nodes"] == 3
        assert d["gpus_per_node"] == 2

    def test_config_to_dict_rejects_non_dataclass(self):
        with pytest.raises(ConfigurationError):
            config_to_dict({"a": 1})

    def test_config_replace(self):
        original = FacilityConfig(n_nodes=3, gpus_per_node=2)
        updated = config_replace(original, n_nodes=5)
        assert updated.n_nodes == 5
        assert original.n_nodes == 3

    def test_config_replace_unknown_field(self):
        with pytest.raises(ConfigurationError, match="unknown config field"):
            config_replace(FacilityConfig(), not_a_field=1)
