"""Tests for the price and carbon-intensity models and the grid facade."""

import numpy as np
import pytest

from repro.analysis.correlation import pearson_correlation
from repro.errors import ConfigurationError, DataError
from repro.grid.carbon_intensity import EMISSION_FACTORS_G_PER_KWH, CarbonIntensityModel
from repro.grid.fuel_mix import FUEL_TYPES, FuelMixModel
from repro.grid.iso_ne import IsoNeLikeGrid
from repro.grid.pricing import LmpPriceConfig, LmpPriceModel
from repro.timeutils import SimulationCalendar


class TestCarbonIntensity:
    def test_gas_heavy_mix_dirtier_than_renewable_mix(self):
        model = CarbonIntensityModel()
        gas_mix = np.zeros((1, len(FUEL_TYPES)))
        gas_mix[0, FUEL_TYPES.index("natural_gas")] = 1.0
        wind_mix = np.zeros((1, len(FUEL_TYPES)))
        wind_mix[0, FUEL_TYPES.index("wind")] = 1.0
        assert model.intensity_from_shares(gas_mix)[0] > model.intensity_from_shares(wind_mix)[0]

    def test_intensity_bounded_by_fuel_factors(self, year_calendar):
        model = CarbonIntensityModel()
        mix = FuelMixModel(seed=0).generate(year_calendar)
        intensity = model.intensity_series(mix)
        assert intensity.min() >= min(EMISSION_FACTORS_G_PER_KWH.values()) - 1e-9
        assert intensity.max() <= max(EMISSION_FACTORS_G_PER_KWH.values()) + 1e-9

    def test_missing_factor_rejected(self):
        with pytest.raises(DataError):
            CarbonIntensityModel(emission_factors={"solar": -1.0})

    def test_override_changes_result(self):
        base = CarbonIntensityModel()
        greener_gas = CarbonIntensityModel(emission_factors={"natural_gas": 300.0})
        shares = np.zeros((1, len(FUEL_TYPES)))
        shares[0, FUEL_TYPES.index("natural_gas")] = 1.0
        assert greener_gas.intensity_from_shares(shares)[0] < base.intensity_from_shares(shares)[0]

    def test_monthly_intensity_shape(self, year_calendar):
        model = CarbonIntensityModel()
        mix = FuelMixModel(seed=0).generate(year_calendar)
        monthly = model.monthly_intensity(year_calendar, mix)
        assert monthly.shape == (12,)
        assert np.all(monthly > 0)

    def test_annual_average_in_plausible_range(self, year_calendar):
        model = CarbonIntensityModel()
        mix = FuelMixModel(seed=0).generate(year_calendar)
        avg = model.annual_average(mix)
        # ISO-NE's average intensity is a few hundred gCO2e/kWh.
        assert 150.0 < avg < 550.0

    def test_wrong_shape_rejected(self):
        with pytest.raises(DataError):
            CarbonIntensityModel().intensity_from_shares(np.ones((4, 2)))


class TestLmpPriceModel:
    def test_prices_positive_and_in_band(self, year_calendar):
        mix = FuelMixModel(seed=1).generate(year_calendar)
        prices = LmpPriceModel(seed=1).price_series(year_calendar, mix)
        assert np.all(prices >= LmpPriceConfig().price_floor_per_mwh)
        monthly = LmpPriceModel(seed=1).monthly_average_price(year_calendar, mix, prices)
        # The paper's Fig. 3 shows monthly averages roughly between $20 and $50.
        assert monthly.min() > 15.0
        assert monthly.max() < 60.0

    def test_price_anticorrelated_with_renewables(self, year_calendar):
        model = LmpPriceModel(seed=1)
        fuel = FuelMixModel(seed=1)
        mix = fuel.generate(year_calendar)
        prices = model.monthly_average_price(year_calendar, mix)
        renewables = fuel.monthly_renewable_share(year_calendar, mix)
        assert pearson_correlation(prices, renewables) < 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            LmpPriceConfig(renewable_discount=1.5)
        with pytest.raises(ConfigurationError):
            LmpPriceConfig(winter_gas_premium=0.8)

    def test_cost_of_hourly_load(self, small_calendar):
        mix = FuelMixModel(seed=0).generate(small_calendar)
        model = LmpPriceModel(seed=0)
        prices = model.price_series(small_calendar, mix)
        load = np.full(prices.shape, 0.5)  # 0.5 MWh each hour
        cost = model.cost_of_hourly_load(prices, load)
        assert cost == pytest.approx(float(np.sum(prices) * 0.5))

    def test_cost_shape_mismatch(self):
        with pytest.raises(DataError):
            LmpPriceModel().cost_of_hourly_load(np.ones(5), np.ones(4))

    def test_mix_horizon_mismatch_rejected(self, small_calendar, year_calendar):
        mix = FuelMixModel(seed=0).generate(small_calendar)
        with pytest.raises(DataError):
            LmpPriceModel(seed=0).price_series(year_calendar, mix)


class TestIsoNeLikeGrid:
    def test_series_aligned(self, year_grid):
        n = year_grid.hours.shape[0]
        assert year_grid.carbon_intensity_g_per_kwh.shape == (n,)
        assert year_grid.price_per_mwh.shape == (n,)
        assert year_grid.renewable_share.shape == (n,)

    def test_monthly_summary(self, year_grid):
        monthly = year_grid.monthly
        assert len(monthly.month_labels) == 12
        assert monthly.renewable_share_pct.min() > 0

    def test_state_at_hour_fields(self, year_grid):
        state = year_grid.state_at_hour(100.5)
        assert set(state) == {"hour", "renewable_share", "carbon_intensity_g_per_kwh", "price_per_mwh"}
        assert state["carbon_intensity_g_per_kwh"] == pytest.approx(
            year_grid.carbon_intensity_at(100.5)
        )

    def test_greenest_hours(self, year_grid):
        top = year_grid.greenest_hours(10)
        assert top.shape == (10,)
        threshold = np.sort(year_grid.renewable_share)[-10]
        assert np.all(year_grid.renewable_share[top] >= threshold - 1e-12)

    def test_greenest_hours_rejects_nonpositive(self, year_grid):
        with pytest.raises(DataError):
            year_grid.greenest_hours(0)

    def test_carbon_anticorrelated_with_renewable_share(self, year_grid):
        corr = pearson_correlation(
            year_grid.monthly.carbon_intensity_g_per_kwh, year_grid.monthly.renewable_share_pct
        )
        assert corr < 0
