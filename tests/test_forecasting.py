"""Tests for the forecasting stack (features, models, wind study, evaluation)."""

import numpy as np
import pytest

from repro.errors import ForecastError
from repro.forecasting.demand import DemandForecaster, PriceForecaster
from repro.forecasting.evaluation import evaluate_forecast, forecast_skill
from repro.forecasting.features import make_lag_matrix, make_seasonal_features, train_test_split_series
from repro.forecasting.linear import (
    AutoregressiveForecaster,
    PersistenceForecaster,
    RidgeRegressor,
    SeasonalNaiveForecaster,
)
from repro.forecasting.wind import WindFarmConfig, WindFarmSimulator, WindForecastStudy


class TestFeatures:
    def test_lag_matrix_values(self):
        series = np.arange(10.0)
        X, y = make_lag_matrix(series, lags=[1, 2], horizon=1)
        # First usable row: t=2 -> features [series[1], series[0]], target series[2].
        np.testing.assert_allclose(X[0], [1.0, 0.0])
        assert y[0] == pytest.approx(2.0)
        assert X.shape[0] == y.shape[0]

    def test_lag_matrix_horizon(self):
        series = np.arange(10.0)
        _, y1 = make_lag_matrix(series, lags=[1], horizon=1)
        _, y3 = make_lag_matrix(series, lags=[1], horizon=3)
        assert y3[0] == y1[0] + 2.0

    def test_lag_matrix_with_exogenous(self):
        series = np.arange(10.0)
        exo = series * 10
        X, y = make_lag_matrix(series, lags=[1], horizon=2, exogenous=exo)
        # Exogenous column holds the value at the target time.
        np.testing.assert_allclose(X[:, -1], y * 10)

    def test_lag_matrix_validation(self):
        with pytest.raises(ForecastError):
            make_lag_matrix(np.arange(3.0), lags=[5])
        with pytest.raises(ForecastError):
            make_lag_matrix(np.arange(10.0), lags=[])
        with pytest.raises(ForecastError):
            make_lag_matrix(np.arange(10.0), lags=[1], horizon=0)

    def test_seasonal_features_shape(self):
        features = make_seasonal_features(np.arange(48.0), periods=[24.0], include_bias=True)
        assert features.shape == (48, 3)
        np.testing.assert_allclose(features[:, 0], 1.0)

    def test_seasonal_features_periodicity(self):
        features = make_seasonal_features(np.arange(48.0), periods=[24.0], include_bias=False)
        np.testing.assert_allclose(features[0], features[24], atol=1e-9)

    def test_train_test_split_chronological(self):
        X = np.arange(20.0)[:, None]
        y = np.arange(20.0)
        X_train, y_train, X_test, y_test = train_test_split_series(X, y, test_fraction=0.25)
        assert X_train.shape[0] == 15
        assert X_test.shape[0] == 5
        assert y_test[0] == 15.0

    def test_split_validation(self):
        with pytest.raises(ForecastError):
            train_test_split_series(np.ones((5, 1)), np.ones(4))


class TestRidge:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5 + rng.normal(scale=0.01, size=200)
        model = RidgeRegressor(alpha=1e-6).fit(X, y)
        assert model.score_r2(X, y) > 0.99

    def test_regularisation_shrinks_coefficients(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = 3.0 * X[:, 0] + rng.normal(scale=0.1, size=100)
        loose = RidgeRegressor(alpha=1e-6).fit(X, y)
        tight = RidgeRegressor(alpha=1e4).fit(X, y)
        assert abs(tight.coef_[0]) < abs(loose.coef_[0])

    def test_predict_before_fit(self):
        with pytest.raises(ForecastError):
            RidgeRegressor().predict(np.ones((2, 2)))

    def test_shape_validation(self):
        with pytest.raises(ForecastError):
            RidgeRegressor().fit(np.ones(5), np.ones(5))
        model = RidgeRegressor().fit(np.ones((5, 2)), np.arange(5.0))
        with pytest.raises(ForecastError):
            model.predict(np.ones((2, 3)))


class TestBaselinesAndAr:
    def _seasonal_series(self, n=600):
        t = np.arange(n, dtype=float)
        rng = np.random.default_rng(2)
        return 10.0 + 3.0 * np.sin(2 * np.pi * t / 24.0) + rng.normal(scale=0.3, size=n)

    def test_persistence_backtest_shapes(self):
        series = self._seasonal_series()
        pred, truth = PersistenceForecaster(horizon=1).backtest(series)
        assert pred.shape == truth.shape

    def test_seasonal_naive_beats_persistence_on_seasonal_series(self):
        series = self._seasonal_series()
        p_pred, p_truth = PersistenceForecaster(horizon=12).backtest(series)
        s_pred, s_truth = SeasonalNaiveForecaster(season_length=24, horizon=12).backtest(series)
        assert evaluate_forecast(s_pred, s_truth).mae < evaluate_forecast(p_pred, p_truth).mae

    def test_ar_forecaster_beats_persistence(self):
        series = self._seasonal_series()
        ar = AutoregressiveForecaster(lags=(1, 2, 24), horizon=12)
        a_pred, a_truth = ar.backtest(series)
        p_pred, p_truth = PersistenceForecaster(horizon=12).backtest(series)
        n = min(a_pred.shape[0], p_pred.shape[0])
        skill = forecast_skill(a_pred[-n:], a_truth[-n:], p_pred[-n:])
        assert skill > 0.2

    def test_ar_requires_fit_before_predict(self):
        with pytest.raises(ForecastError):
            AutoregressiveForecaster().predict_from_history(np.arange(50.0))

    def test_too_short_series_rejected(self):
        with pytest.raises(ForecastError):
            AutoregressiveForecaster(lags=(1, 24), horizon=1).fit(np.arange(10.0))


class TestEvaluation:
    def test_perfect_forecast(self):
        truth = np.array([1.0, 2.0, 3.0])
        metrics = evaluate_forecast(truth, truth)
        assert metrics.mae == 0.0
        assert metrics.rmse == 0.0
        assert metrics.bias == 0.0

    def test_bias_sign(self):
        truth = np.ones(5)
        metrics = evaluate_forecast(truth + 2.0, truth)
        assert metrics.bias == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ForecastError):
            evaluate_forecast(np.ones(3), np.ones(4))
        with pytest.raises(ForecastError):
            evaluate_forecast(np.array([np.nan, 1.0]), np.array([1.0, 1.0]))

    def test_skill_metric_validation(self):
        truth = np.arange(5.0)
        with pytest.raises(ForecastError):
            forecast_skill(truth, truth, truth, metric="mape")
        with pytest.raises(ForecastError):
            forecast_skill(truth, truth, truth)  # baseline error zero


class TestWind:
    def test_power_curve_breakpoints(self):
        farm = WindFarmSimulator(WindFarmConfig(capacity_mw=50.0), seed=0)
        speeds = np.array([0.0, 2.0, 12.0, 20.0, 26.0])
        power = farm.power_curve(speeds)
        assert power[0] == 0.0 and power[1] == 0.0
        assert power[2] == pytest.approx(50.0)
        assert power[3] == pytest.approx(50.0)
        assert power[4] == 0.0  # beyond cut-out

    def test_power_curve_monotone_below_rated(self):
        farm = WindFarmSimulator(seed=0)
        speeds = np.linspace(3.0, 12.0, 20)
        power = farm.power_curve(speeds)
        assert np.all(np.diff(power) >= 0)

    def test_wind_series_nonnegative(self):
        farm = WindFarmSimulator(seed=0)
        speed, power = farm.generate(2000)
        assert speed.min() >= 0
        assert power.min() >= 0
        assert power.max() <= farm.config.capacity_mw

    def test_study_beats_persistence_at_36h(self):
        """The learned 36 h forecast must beat persistence clearly (the [30] claim)."""
        study = WindForecastStudy.run(n_hours=4000, horizon_h=36, seed=0)
        assert study.skill_vs_persistence > 0.15
        assert study.model_metrics.mae < study.persistence_metrics.mae

    def test_config_validation(self):
        with pytest.raises(Exception):
            WindFarmConfig(cut_in_ms=15.0, rated_ms=12.0)


class TestDemandAndPriceForecasters:
    def test_demand_forecaster_backtest(self, year_grid):
        # Forecast the renewable share series as a stand-in occupancy signal.
        series = year_grid.renewable_share[: 24 * 200]
        forecaster = DemandForecaster(horizon=24)
        metrics = forecaster.evaluate(series)
        assert metrics.mae >= 0
        assert metrics.n_samples > 100

    def test_price_forecaster_uses_exogenous_renewables(self, year_grid):
        n = 24 * 200
        prices = year_grid.price_per_mwh[:n]
        renewables = year_grid.renewable_share[:n]
        with_exo = PriceForecaster(horizon=24).evaluate(prices, renewables)
        without = PriceForecaster(horizon=24).evaluate(prices)
        assert with_exo.mae <= without.mae * 1.05

    def test_deadline_pressure_feature(self):
        pressure = DemandForecaster.deadline_pressure([("X", 100.0)], n_hours=200, window_days=2.0)
        assert pressure.shape == (200,)
        assert pressure[90] == 1.0
        assert pressure[40] == 0.0
        assert pressure[150] == 0.0

    def test_backtest_too_short(self):
        with pytest.raises(ForecastError):
            DemandForecaster(horizon=24).backtest(np.arange(50.0))
