"""Tests for the GPU power/throughput model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TelemetryError
from repro.telemetry.gpu_power import KNOWN_GPUS, GpuPowerModel, GpuSpec, get_gpu_spec


@pytest.fixture(scope="module")
def v100_model() -> GpuPowerModel:
    return GpuPowerModel(get_gpu_spec("V100"))


class TestGpuSpec:
    def test_known_gpus_have_consistent_specs(self):
        for spec in KNOWN_GPUS.values():
            assert 0 <= spec.idle_power_w < spec.tdp_w
            assert spec.min_power_limit_w <= spec.tdp_w

    def test_lookup_case_insensitive(self):
        assert get_gpu_spec("v100").name == "V100"
        assert get_gpu_spec(" a100 ").name == "A100"

    def test_unknown_gpu(self):
        with pytest.raises(TelemetryError):
            get_gpu_spec("H999")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            GpuSpec(
                name="bad",
                tdp_w=100.0,
                idle_power_w=150.0,  # idle above TDP
                min_power_limit_w=50.0,
                base_clock_mhz=1000.0,
                max_boost_clock_mhz=1100.0,
                memory_gb=16.0,
                peak_fp16_tflops=10.0,
            )


class TestPowerCurve:
    def test_idle_power_at_zero_utilization(self, v100_model):
        assert v100_model.power_w(0.0) == pytest.approx(v100_model.spec.idle_power_w)

    def test_tdp_at_full_utilization(self, v100_model):
        assert v100_model.power_w(1.0) == pytest.approx(v100_model.spec.tdp_w)

    def test_power_monotone_in_utilization(self, v100_model):
        utils = np.linspace(0, 1, 21)
        powers = np.asarray(v100_model.power_w(utils))
        assert np.all(np.diff(powers) >= 0)

    def test_utilization_clipped(self, v100_model):
        assert v100_model.power_w(1.5) == pytest.approx(v100_model.spec.tdp_w)
        assert v100_model.power_w(-0.5) == pytest.approx(v100_model.spec.idle_power_w)

    def test_cap_limits_power(self, v100_model):
        capped = v100_model.power_w(1.0, 150.0)
        assert capped == pytest.approx(150.0)

    def test_cap_does_not_bind_at_low_utilization(self, v100_model):
        uncapped = v100_model.power_w(0.3)
        assert v100_model.power_w(0.3, 200.0) == pytest.approx(float(uncapped))

    def test_clamp_power_limit(self, v100_model):
        spec = v100_model.spec
        assert v100_model.clamp_power_limit(10.0) == pytest.approx(spec.min_power_limit_w)
        assert v100_model.clamp_power_limit(1e4) == pytest.approx(spec.tdp_w)

    def test_utilization_for_power_inverts(self, v100_model):
        for util in (0.2, 0.5, 0.9):
            power = float(v100_model.power_w(util))
            assert v100_model.utilization_for_power(power) == pytest.approx(util, abs=1e-6)


class TestThroughputUnderCaps:
    def test_no_cap_no_slowdown(self, v100_model):
        assert v100_model.relative_throughput(v100_model.spec.tdp_w) == pytest.approx(1.0)

    def test_slowdown_at_least_one(self, v100_model):
        caps = np.linspace(v100_model.spec.min_power_limit_w, v100_model.spec.tdp_w, 10)
        slowdowns = np.asarray(v100_model.slowdown_factor(caps))
        assert np.all(slowdowns >= 1.0 - 1e-12)

    def test_throughput_decreases_with_tighter_caps(self, v100_model):
        caps = np.linspace(v100_model.spec.min_power_limit_w, v100_model.spec.tdp_w, 10)
        throughputs = np.asarray(v100_model.relative_throughput(caps))
        assert np.all(np.diff(throughputs) >= 0)

    def test_cap_not_binding_means_no_slowdown(self, v100_model):
        # At 40% utilization the device draws well under 200 W, so a 200 W cap is free.
        assert float(v100_model.slowdown_factor(200.0, utilization=0.4)) == pytest.approx(1.0)

    def test_knee_shape_savings_exceed_penalty(self, v100_model):
        """Moderate caps save more energy than they cost in runtime (the [15] claim)."""
        cap = 0.8 * v100_model.spec.tdp_w
        slowdown = float(v100_model.slowdown_factor(cap, 1.0))
        savings = float(v100_model.energy_savings_fraction(cap, 1.0))
        assert savings > (slowdown - 1.0)

    def test_effective_clock_bounded(self, v100_model):
        clock = float(v100_model.effective_clock_mhz(v100_model.spec.min_power_limit_w))
        assert 0 < clock <= v100_model.spec.max_boost_clock_mhz


class TestEnergyForWork:
    def test_uncapped_energy(self, v100_model):
        energy = float(v100_model.energy_for_work(3600.0, 1.0))
        assert energy == pytest.approx(v100_model.spec.tdp_w * 3600.0)

    def test_capped_energy_less_than_uncapped_for_saturating_work(self, v100_model):
        uncapped = float(v100_model.energy_for_work(3600.0, 1.0))
        capped = float(v100_model.energy_for_work(3600.0, 1.0, 0.7 * v100_model.spec.tdp_w))
        assert capped < uncapped

    def test_energy_savings_fraction_positive_for_saturating_job(self, v100_model):
        savings = float(v100_model.energy_savings_fraction(0.6 * v100_model.spec.tdp_w, 1.0))
        assert 0.0 < savings < 1.0

    def test_energy_savings_zero_when_cap_not_binding(self, v100_model):
        savings = float(v100_model.energy_savings_fraction(240.0, 0.2))
        assert savings == pytest.approx(0.0, abs=1e-9)

    def test_negative_duration_rejected(self, v100_model):
        with pytest.raises(TelemetryError):
            v100_model.energy_for_work(-1.0, 1.0)

    def test_achieved_tflops_scales_with_utilization(self, v100_model):
        full = float(v100_model.achieved_tflops(1.0))
        half = float(v100_model.achieved_tflops(0.5))
        assert full == pytest.approx(v100_model.spec.peak_fp16_tflops)
        assert half == pytest.approx(0.5 * full)
