"""Tests for process-parallel fleet stepping (repro.fleet.parallel).

The contract under test is *parity by construction*: routing stays in the
coordinator and both backends step identical per-site simulators against
identical shipped substrates, so a parallel run must be **bit-identical** to
the serial lockstep loop — same assignments, same per-site job records, same
totals.  Covers, per the perf issue's acceptance bar:

* hash-pinned serial == parallel parity across several routers (the pins
  deliberately duplicate ``tests/test_fleet.py`` so drift in either mode is
  caught) plus a composed per-site policy spec;
* the degenerate one-site fleet on the worker path vs.
  :meth:`~repro.experiments.ExperimentSession.simulate_policy`;
* worker death and worker-side exceptions surfacing as typed
  :class:`~repro.errors.FleetError`\\ s naming the hosted sites;
* the :class:`~repro.fleet.result.FleetStepTimings` breakdown;
* the post-horizon routing-context clamp (trailing jobs are routed at the
  last in-horizon window, not one hour past the end of the substrate series);
* the ``--workers`` wiring of ``greenhpc fleet``.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import FleetError
from repro.experiments import ExperimentSession, get_scenario
from repro.fleet import FleetSimulator, FleetSpec, get_fleet
from repro.fleet.parallel import (
    FleetWorkerPool,
    SitePayload,
    build_site_simulator,
    fleet_start_method,
    site_state,
)
from repro.fleet.result import FleetStepTimings
from repro.fleet.routing import Router
from repro.parallel import ParallelConfig
from repro.scheduler.job import Job

SEED = 7
N_MONTHS = 2
HORIZON_H = 72.0
N_JOBS = 120
WORKERS = 4

#: Routers pinned on the seeded tri-site world.  The hashes duplicate the
#: serial pins in tests/test_fleet.py on purpose: if either stepping mode
#: drifts, exactly one of the two files starts failing and says which.
PINNED_PARALLEL_HASHES = {
    "round-robin": "12af48094a7c53997bae1d4c77c087fb2cfbc82151a76e171ff2201f7edb97dd",
    "least-queued": "b456ad124832b0dce2f8eccc9106a8b09175ada1ca5e27021f71c2795169ac47",
    "carbon-min": "091284e4e854228e5715e3a6ce68657dd2cb629a7f25f37d0a30fb12f7593e49",
    "carbon-min+free-gpus(min=48)": (
        "da2f670af5709a196eaf2e06abdbe9d697d187e6d8a7f14ed90b8741200f2277"
    ),
}

#: The composed per-site policy pinned for both stepping modes.
COMPOSED_POLICY = "backfill+carbon(cap=0.7)"
PINNED_COMPOSED_HASH = (
    "5dd0d956a09b5d5fbcb73a5251e0418a07d69fbf7db50ad7d2114b9703ac3808"
)


def _fleet_fingerprint(result) -> str:
    payload = [
        (a.job_id, a.site_index, a.site_name, a.submit_time_h, a.dispatch_hour)
        for a in result.assignments
    ]
    for site_result in result.site_results:
        payload.extend(
            (r.job_id, r.start_time_h, r.finish_time_h, r.energy_j, r.power_cap_w, r.completed)
            for r in site_result.job_records
        )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


@pytest.fixture(scope="module")
def tri_world():
    """The seeded tri-site world: fleet, shared session, shared trace."""
    fleet = get_fleet("tri-site-small").with_member_overrides(n_months=N_MONTHS, seed=SEED)
    session = ExperimentSession(fleet.members[0])
    trace = session.job_trace(n_jobs=N_JOBS, horizon_h=HORIZON_H, spec=fleet.members[0])
    for member in fleet.members:
        session.scenario(member)
    return fleet, session, trace


def _run(fleet, session, trace, *, router=None, policy="backfill", workers=None):
    parallel = None if workers is None else ParallelConfig(n_workers=workers)
    return FleetSimulator(
        fleet,
        router=router,
        policy=policy,
        horizon_h=HORIZON_H,
        parallel=parallel,
        session=session,
    ).run(trace)


# ---------------------------------------------------------------------------
# Hash-pinned serial == parallel parity
# ---------------------------------------------------------------------------


class TestParallelParity:
    @pytest.mark.parametrize("router", sorted(PINNED_PARALLEL_HASHES))
    def test_workers_1_vs_4_bit_identical_and_pinned(self, tri_world, router):
        fleet, session, trace = tri_world
        serial = _run(fleet, session, trace, router=router, workers=1)
        parallel = _run(fleet, session, trace, router=router, workers=WORKERS)
        assert serial.step_timings.mode == "serial"
        assert parallel.step_timings.mode == "parallel"
        assert _fleet_fingerprint(serial) == PINNED_PARALLEL_HASHES[router]
        assert _fleet_fingerprint(parallel) == PINNED_PARALLEL_HASHES[router]
        assert parallel.assignments == serial.assignments

    def test_composed_policy_spec_bit_identical_and_pinned(self, tri_world):
        fleet, session, trace = tri_world
        serial = _run(
            fleet, session, trace, router="least-queued", policy=COMPOSED_POLICY
        )
        parallel = _run(
            fleet,
            session,
            trace,
            router="least-queued",
            policy=COMPOSED_POLICY,
            workers=WORKERS,
        )
        assert _fleet_fingerprint(serial) == PINNED_COMPOSED_HASH
        assert _fleet_fingerprint(parallel) == PINNED_COMPOSED_HASH

    def test_parallel_totals_and_power_series_match_serial(self, tri_world):
        fleet, session, trace = tri_world
        serial = _run(fleet, session, trace, router="carbon-min")
        parallel = _run(fleet, session, trace, router="carbon-min", workers=WORKERS)
        assert parallel.it_energy_kwh == serial.it_energy_kwh
        assert parallel.facility_energy_kwh == serial.facility_energy_kwh
        assert parallel.total_emissions_kg == serial.total_emissions_kg
        assert parallel.total_cost_usd == serial.total_cost_usd
        for serial_site, parallel_site in zip(serial.site_results, parallel.site_results):
            assert parallel_site.job_records == serial_site.job_records
            np.testing.assert_array_equal(
                parallel_site.it_power_w, serial_site.it_power_w
            )
            np.testing.assert_array_equal(
                parallel_site.facility_power_w, serial_site.facility_power_w
            )

    def test_input_trace_left_pristine_by_parallel_run(self, tri_world):
        fleet, session, trace = tri_world
        before = [(job.job_id, job.state, job.submit_time_h) for job in trace]
        _run(fleet, session, trace, router="round-robin", workers=WORKERS)
        assert [(job.job_id, job.state, job.submit_time_h) for job in trace] == before


# ---------------------------------------------------------------------------
# Degenerate one-site fleet on the worker path
# ---------------------------------------------------------------------------


class TestDegenerateParallelParity:
    def test_one_site_parallel_fleet_matches_simulate_policy(self):
        spec = get_scenario("supercloud-small").replace(n_months=N_MONTHS, seed=SEED)
        session = ExperimentSession(spec)
        single = session.simulate_policy("backfill", n_jobs=80, horizon_h=HORIZON_H)
        fleet = FleetSpec(name="solo-parallel-test", members=(spec,))
        # An explicit multi-worker request parallelises even a one-site fleet
        # (the pool caps the process count at the number of sites).
        fleet_result = FleetSimulator(
            fleet,
            policy="backfill",
            horizon_h=HORIZON_H,
            parallel=ParallelConfig(n_workers=2),
            session=session,
        ).run(n_jobs=80)
        assert fleet_result.step_timings.mode == "parallel"
        assert fleet_result.step_timings.n_workers == 1
        (site_result,) = fleet_result.site_results
        assert site_result.job_records == single.job_records
        np.testing.assert_array_equal(site_result.it_power_w, single.it_power_w)
        np.testing.assert_array_equal(
            site_result.facility_power_w, single.facility_power_w
        )
        assert fleet_result.facility_energy_kwh == single.facility_energy_kwh
        assert fleet_result.total_emissions_kg == single.total_emissions_kg


# ---------------------------------------------------------------------------
# Worker failure paths
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def pool_payloads(tri_world):
    fleet, session, _ = tri_world
    return FleetSimulator(fleet, horizon_h=24.0, session=session)._site_payloads()


class TestWorkerFailures:
    def test_dead_worker_raises_fleet_error_naming_its_sites(self, pool_payloads):
        with FleetWorkerPool(pool_payloads, 2) as pool:
            pool.begin()
            victim = pool.workers[0]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            with pytest.raises(FleetError, match="supercloud-small") as excinfo:
                pool.advance(1.0, 1.0)
            message = str(excinfo.value)
            assert "cannot continue" in message
            for name in victim.site_names:
                assert repr(name) in message

    def test_worker_side_exception_surfaces_as_fleet_error(self, pool_payloads):
        with FleetWorkerPool(pool_payloads, 2) as pool:
            pool.begin()
            job = Job(
                job_id="dup", user_id="u", n_gpus=1, duration_h=1.0, submit_time_h=0.0
            )
            # A deliberately invalid batch: the duplicate id raises inside the
            # worker, deferred to the next replying command (submit-batch
            # itself sends no reply so advance can pipeline behind it).
            pool.submit_batch({0: [job.clone_pending(), job.clone_pending()]})
            with pytest.raises(FleetError, match="duplicate job id 'dup'"):
                pool.advance(1.0, 1.0)

    def test_failed_worker_refuses_further_exchanges(self, pool_payloads):
        with FleetWorkerPool(pool_payloads, 2) as pool:
            pool.begin()
            pool.workers[0].process.kill()
            pool.workers[0].process.join(timeout=5.0)
            with pytest.raises(FleetError):
                pool.advance(1.0, 1.0)
            with pytest.raises(FleetError, match="already failed"):
                pool.snapshot(1.0)

    def test_unbuildable_site_fails_at_start(self, pool_payloads):
        # A horizon longer than the member's substrate series cannot be
        # hosted; the build acknowledgement forwards the construction error.
        bad = [
            SitePayload(
                index=p.index,
                spec=p.spec,
                policy=p.policy,
                horizon_h=1e9,
                power_cap_fraction=p.power_cap_fraction,
                weather_hourly_c=p.weather_hourly_c,
                grid=p.grid,
            )
            for p in pool_payloads
        ]
        with pytest.raises(FleetError, match="cannot host"):
            with FleetWorkerPool(bad, 2):
                pass


# ---------------------------------------------------------------------------
# The worker protocol beyond the lockstep loop
# ---------------------------------------------------------------------------


class TestWorkerProtocol:
    def test_mid_run_power_summary_and_snapshot(self, pool_payloads):
        with FleetWorkerPool(pool_payloads, 2) as pool:
            assert pool.n_workers == 2
            states = pool.begin()
            assert sorted(states) == [0, 1, 2]
            pool.advance(3.0, 3.0)
            summaries = pool.power_summary()
            assert sorted(summaries) == [0, 1, 2]
            for summary in summaries.values():
                assert summary.tick_times_h.size == 3  # ticks 0..2 drained
            again = pool.snapshot(3.0)
            assert sorted(again) == [0, 1, 2]

    def test_states_match_inprocess_simulator(self, pool_payloads):
        payload = pool_payloads[0]
        reference = build_site_simulator(payload)
        reference.begin()
        reference.advance(2.0)
        with FleetWorkerPool(pool_payloads, 2) as pool:
            pool.begin()
            states = pool.advance(2.0, 2.0)
        assert states[payload.index] == site_state(reference, 2.0)

    def test_worker_count_capped_at_sites_and_close_idempotent(self, pool_payloads):
        pool = FleetWorkerPool(pool_payloads, 64)
        assert pool.n_workers == len(pool_payloads)
        with pool:
            pool.begin()
        pool.close()  # second close is a no-op
        assert all(not w.process.is_alive() for w in pool.workers)

    def test_empty_payloads_raise(self):
        with pytest.raises(FleetError, match="at least one site payload"):
            FleetWorkerPool([], 2)

    def test_start_method_is_a_registered_one(self):
        import multiprocessing as mp

        assert fleet_start_method() in mp.get_all_start_methods()


# ---------------------------------------------------------------------------
# Step timings
# ---------------------------------------------------------------------------


class TestStepTimings:
    def test_serial_and_parallel_breakdowns(self, tri_world):
        fleet, session, trace = tri_world
        serial = _run(fleet, session, trace, router="round-robin")
        parallel = _run(fleet, session, trace, router="round-robin", workers=WORKERS)
        for result, mode, workers in (
            (serial, "serial", 1),
            (parallel, "parallel", min(WORKERS, fleet.n_sites)),
        ):
            timings = result.step_timings
            assert timings.mode == mode
            assert timings.n_workers == workers
            assert timings.n_windows == int(HORIZON_H)
            assert len(timings.site_advance_s) == fleet.n_sites
            assert timings.total_s > 0
            assert timings.total_s >= timings.route_s
            assert timings.max_site_advance_s == max(timings.site_advance_s)
            assert timings.sum_site_advance_s == pytest.approx(
                sum(timings.site_advance_s)
            )

    def test_to_dict_json_round_trip(self, tri_world):
        fleet, session, trace = tri_world
        result = _run(fleet, session, trace, router="round-robin", workers=WORKERS)
        payload = json.loads(json.dumps(result.to_dict()))
        timings = payload["step_timings"]
        assert timings["mode"] == "parallel"
        assert timings["n_workers"] == min(WORKERS, fleet.n_sites)
        assert len(timings["site_advance_s"]) == fleet.n_sites
        rebuilt = FleetStepTimings(
            mode=timings["mode"],
            n_workers=timings["n_workers"],
            n_windows=timings["n_windows"],
            total_s=timings["total_s"],
            route_s=timings["route_s"],
            advance_s=timings["advance_s"],
            site_advance_s=tuple(timings["site_advance_s"]),
        )
        assert rebuilt.to_dict() == timings


# ---------------------------------------------------------------------------
# Post-horizon routing-context clamp
# ---------------------------------------------------------------------------


class _RecordingRouter(Router):
    """Routes everything to site 0 and records every ``now_h`` it was shown."""

    name = "recording"

    def __init__(self):
        self.now_hours = []

    def begin_fleet(self, n_sites):
        pass

    def select(self, job, sites, now_h):
        self.now_hours.append(now_h)
        return 0


class TestPostHorizonClamp:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_trailing_jobs_routed_at_last_in_horizon_window(self, tri_world, workers):
        fleet, session, _ = tri_world
        jobs = [
            Job(job_id="in-window", user_id="u", n_gpus=1, duration_h=1.0,
                submit_time_h=1.5),
            Job(job_id="at-horizon", user_id="u", n_gpus=1, duration_h=1.0,
                submit_time_h=HORIZON_H),
            Job(job_id="past-horizon", user_id="u", n_gpus=1, duration_h=1.0,
                submit_time_h=HORIZON_H + 40.0),
        ]
        router = _RecordingRouter()
        parallel = None if workers is None else ParallelConfig(n_workers=workers)
        result = FleetSimulator(
            fleet,
            router=router,
            horizon_h=HORIZON_H,
            parallel=parallel,
            session=session,
        ).run(jobs)
        # The in-window job sees its own window; both trailing jobs see the
        # clamped context of the last in-horizon window, never hour 72 (the
        # substrate series end at the horizon boundary).
        assert router.now_hours == [1.0, HORIZON_H - 1.0, HORIZON_H - 1.0]
        trailing = {a.job_id: a for a in result.assignments if a.dispatch_hour == 72}
        assert set(trailing) == {"at-horizon", "past-horizon"}
        by_id = {
            r.job_id: r
            for site_result in result.site_results
            for r in site_result.job_records
        }
        assert by_id["past-horizon"].completed is False
        assert by_id["in-window"].completed is True


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------


class TestFleetWorkersCli:
    def test_fleet_workers_flag_steps_in_parallel(self, capsys):
        exit_code = main(
            [
                "--months", str(N_MONTHS), "--seed", str(SEED), "--workers", "2",
                "fleet", "--jobs", "40", "--horizon-days", "2.0", "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scalars"]["step_workers"] == 2
        assert any("parallel x2" in note for note in payload["notes"])

    def test_workers_env_var_drives_fleet_stepping(self, capsys, monkeypatch):
        monkeypatch.setenv("GREENHPC_WORKERS", "2")
        exit_code = main(
            [
                "--months", str(N_MONTHS), "--seed", str(SEED),
                "fleet", "--jobs", "40", "--horizon-days", "2.0", "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scalars"]["step_workers"] == 2

    def test_serial_cli_run_reports_serial_stepping(self, capsys):
        exit_code = main(
            [
                "--months", str(N_MONTHS), "--seed", str(SEED),
                "fleet", "--jobs", "40", "--horizon-days", "2.0", "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scalars"]["step_workers"] == 1
        assert any("serial" in note for note in payload["notes"])
