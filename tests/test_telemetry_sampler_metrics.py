"""Tests for the power sampler, energy integrator and facility metrics."""

import numpy as np
import pytest

from repro.errors import DataError, TelemetryError
from repro.telemetry.metrics import (
    carbon_usage_effectiveness,
    energy_reuse_effectiveness,
    it_power_from_facility,
    power_usage_effectiveness,
    water_usage_effectiveness,
)
from repro.telemetry.nvml_sim import SimulatedNvml
from repro.telemetry.sampler import EnergyIntegrator, PowerSampler


class TestEnergyIntegrator:
    def test_empty_and_single_sample(self):
        integ = EnergyIntegrator()
        assert integ.energy_j() == 0.0
        integ.add(0.0, 100.0)
        assert integ.energy_j() == 0.0
        assert integ.peak_power_w() == 100.0

    def test_constant_power(self):
        integ = EnergyIntegrator()
        for t in range(11):
            integ.add(float(t), 200.0)
        assert integ.energy_j() == pytest.approx(2000.0)
        assert integ.mean_power_w() == pytest.approx(200.0)

    def test_rejects_decreasing_time(self):
        integ = EnergyIntegrator()
        integ.add(1.0, 10.0)
        with pytest.raises(TelemetryError):
            integ.add(0.5, 10.0)

    def test_rejects_negative_power(self):
        with pytest.raises(TelemetryError):
            EnergyIntegrator().add(0.0, -5.0)

    def test_as_arrays(self):
        integ = EnergyIntegrator()
        integ.add(0.0, 1.0)
        integ.add(1.0, 2.0)
        times, powers = integ.as_arrays()
        np.testing.assert_allclose(times, [0.0, 1.0])
        np.testing.assert_allclose(powers, [1.0, 2.0])


class TestPowerSampler:
    def _nvml(self, n=2):
        nvml = SimulatedNvml.create(n, "V100", seed=0, measurement_noise_fraction=0.0)
        for handle in nvml.devices:
            nvml.set_utilization(handle, 1.0)
        return nvml

    def test_run_integrates_energy(self):
        nvml = self._nvml(2)
        sampler = PowerSampler(nvml, period_s=10.0)
        sampler.run(3600.0)
        # Two V100s at TDP for one hour = 2 * 250 W * 3600 s.
        assert sampler.energy_j() == pytest.approx(2 * 250.0 * 3600.0, rel=1e-3)
        assert nvml.total_energy_j() == pytest.approx(sampler.energy_j(), rel=1e-3)

    def test_per_device_energy(self):
        nvml = self._nvml(2)
        sampler = PowerSampler(nvml, period_s=5.0)
        sampler.run(100.0)
        total = sampler.energy_j()
        per_device = sampler.energy_j(0) + sampler.energy_j(1)
        assert per_device == pytest.approx(total, rel=1e-9)

    def test_partial_period_handled(self):
        nvml = self._nvml(1)
        sampler = PowerSampler(nvml, period_s=7.0)
        sampler.run(10.0)
        assert nvml.clock_s == pytest.approx(10.0)

    def test_device_subset(self):
        nvml = self._nvml(3)
        sampler = PowerSampler(nvml, period_s=1.0, devices=[0, 2])
        sampler.run(10.0)
        assert sampler.energy_j(0) > 0
        with pytest.raises(TelemetryError):
            sampler.energy_j(1)

    def test_invalid_period(self):
        with pytest.raises(TelemetryError):
            PowerSampler(self._nvml(1), period_s=0.0)

    def test_mean_and_peak_power(self):
        nvml = self._nvml(1)
        sampler = PowerSampler(nvml, period_s=1.0)
        sampler.run(60.0)
        assert sampler.mean_power_w() == pytest.approx(250.0, rel=1e-6)
        assert sampler.peak_power_w() == pytest.approx(250.0, rel=1e-6)

    def test_power_trace_shapes(self):
        nvml = self._nvml(1)
        sampler = PowerSampler(nvml, period_s=1.0)
        sampler.run(10.0)
        times, powers = sampler.power_trace()
        assert times.shape == powers.shape
        assert times.shape[0] == len(sampler.samples)


class TestFacilityMetrics:
    def test_pue_basic(self):
        assert power_usage_effectiveness(130.0, 100.0) == pytest.approx(1.3)

    def test_pue_rejects_impossible(self):
        with pytest.raises(DataError):
            power_usage_effectiveness(90.0, 100.0)
        with pytest.raises(DataError):
            power_usage_effectiveness(100.0, 0.0)

    def test_it_power_from_facility(self):
        assert it_power_from_facility(130.0, 1.3) == pytest.approx(100.0)
        with pytest.raises(DataError):
            it_power_from_facility(130.0, 0.9)

    def test_cue(self):
        assert carbon_usage_effectiveness(300.0, 1.0) == pytest.approx(300.0)
        with pytest.raises(DataError):
            carbon_usage_effectiveness(-1.0, 1.0)

    def test_ere_can_go_below_one(self):
        ere = energy_reuse_effectiveness(130.0, 50.0, 100.0)
        assert ere == pytest.approx(0.8)

    def test_ere_rejects_reuse_above_facility(self):
        with pytest.raises(DataError):
            energy_reuse_effectiveness(100.0, 150.0, 100.0)

    def test_wue(self):
        assert water_usage_effectiveness(180.0, 100.0) == pytest.approx(1.8)
        with pytest.raises(DataError):
            water_usage_effectiveness(-1.0, 100.0)
