"""Tests for the job model and the segmented queue system."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.scheduler.job import Job, JobState
from repro.scheduler.queue import JobQueue, QueuePolicy, SegmentedQueueSystem


def make_job(**overrides) -> Job:
    defaults = dict(job_id="j1", user_id="u1", n_gpus=2, duration_h=4.0, submit_time_h=1.0)
    defaults.update(overrides)
    return Job(**defaults)


class TestJobValidation:
    def test_valid_job(self):
        job = make_job()
        assert job.is_pending
        assert job.gpu_hours == pytest.approx(8.0)

    def test_rejects_bad_gpus(self):
        with pytest.raises(SchedulingError):
            make_job(n_gpus=0)

    def test_rejects_bad_duration(self):
        with pytest.raises(SchedulingError):
            make_job(duration_h=0.0)

    def test_rejects_bad_utilization(self):
        with pytest.raises(SchedulingError):
            make_job(utilization=1.5)

    def test_rejects_deadline_before_submit(self):
        with pytest.raises(SchedulingError):
            make_job(deadline_h=0.5)

    def test_rejects_bad_cap_fraction(self):
        with pytest.raises(SchedulingError):
            make_job(power_cap_fraction=0.0)


class TestJobLifecycle:
    def test_start_and_complete(self):
        job = make_job()
        job.mark_started(2.0, power_cap_w=200.0, duration_h=4.5)
        assert job.is_running
        assert job.wait_time_h() == pytest.approx(1.0)
        job.mark_completed(6.5, energy_j=1e6)
        assert job.state is JobState.COMPLETED
        assert job.turnaround_h() == pytest.approx(5.5)
        assert job.energy_j == 1e6

    def test_cannot_start_twice(self):
        job = make_job()
        job.mark_started(2.0, power_cap_w=None, duration_h=4.0)
        with pytest.raises(SchedulingError):
            job.mark_started(3.0, power_cap_w=None, duration_h=4.0)

    def test_cannot_start_before_submit(self):
        job = make_job(submit_time_h=10.0)
        with pytest.raises(SchedulingError):
            job.mark_started(5.0, power_cap_w=None, duration_h=4.0)

    def test_cannot_complete_pending(self):
        with pytest.raises(SchedulingError):
            make_job().mark_completed(5.0, 0.0)

    def test_cancel(self):
        job = make_job()
        job.mark_cancelled()
        assert job.is_finished
        with pytest.raises(SchedulingError):
            job.mark_cancelled()

    def test_deadline_miss_detection(self):
        job = make_job(deadline_h=6.0)
        job.mark_started(1.0, power_cap_w=None, duration_h=4.0)
        job.mark_completed(7.0, 0.0)
        assert job.missed_deadline()

    def test_deadline_met(self):
        job = make_job(deadline_h=10.0)
        job.mark_started(1.0, power_cap_w=None, duration_h=4.0)
        job.mark_completed(5.0, 0.0)
        assert not job.missed_deadline()

    def test_must_start_by(self):
        assert make_job().must_start_by() == pytest.approx(1.0)
        deferrable = make_job(deferrable=True, max_defer_h=12.0)
        assert deferrable.must_start_by() == pytest.approx(13.0)

    def test_latest_start_for_deadline(self):
        job = make_job(deadline_h=10.0)
        assert job.latest_start_for_deadline() == pytest.approx(6.0)
        assert job.latest_start_for_deadline(slowdown_factor=1.5) == pytest.approx(4.0)
        assert make_job().latest_start_for_deadline() is None

    def test_clone_pending_resets_runtime(self):
        job = make_job()
        job.mark_started(2.0, power_cap_w=None, duration_h=4.0)
        clone = job.clone_pending()
        assert clone.is_pending
        assert clone.start_time_h is None
        assert clone.job_id == job.job_id


class TestQueuePolicy:
    def test_admits_by_size(self):
        policy = QueuePolicy(name="small", max_gpus_per_job=4)
        assert policy.admits(make_job(n_gpus=4))
        assert not policy.admits(make_job(n_gpus=8))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QueuePolicy(name="", max_gpus_per_job=4)
        with pytest.raises(ConfigurationError):
            QueuePolicy(name="x", max_gpus_per_job=0)
        with pytest.raises(ConfigurationError):
            QueuePolicy(name="x", max_gpus_per_job=4, power_cap_fraction=0.0)


class TestJobQueue:
    def test_submit_applies_policy(self):
        queue = JobQueue(QueuePolicy(name="eco", max_gpus_per_job=8, power_cap_fraction=0.6, priority_boost=2))
        job = make_job()
        queue.submit(job)
        assert job.queue_name == "eco"
        assert job.power_cap_fraction == pytest.approx(0.6)
        assert job.priority == 2

    def test_rejects_oversized_job(self):
        queue = JobQueue(QueuePolicy(name="small", max_gpus_per_job=1))
        with pytest.raises(SchedulingError):
            queue.submit(make_job(n_gpus=2))

    def test_rejects_non_pending(self):
        queue = JobQueue(QueuePolicy(name="q", max_gpus_per_job=8))
        job = make_job()
        job.mark_started(1.0, power_cap_w=None, duration_h=1.0)
        with pytest.raises(SchedulingError):
            queue.submit(job)

    def test_pending_jobs_drops_started(self):
        queue = JobQueue(QueuePolicy(name="q", max_gpus_per_job=8))
        a, b = make_job(job_id="a"), make_job(job_id="b")
        queue.submit(a)
        queue.submit(b)
        a.mark_started(1.0, power_cap_w=None, duration_h=1.0)
        assert [j.job_id for j in queue.pending_jobs()] == ["b"]

    def test_pop_ready(self):
        queue = JobQueue(QueuePolicy(name="q", max_gpus_per_job=8))
        a, b = make_job(job_id="a", n_gpus=1), make_job(job_id="b", n_gpus=4)
        queue.submit(a)
        queue.submit(b)
        ready = queue.pop_ready(lambda j: j.n_gpus <= 2)
        assert [j.job_id for j in ready] == ["a"]
        assert len(queue) == 1

    def test_waiting_gpu_demand(self):
        queue = JobQueue(QueuePolicy(name="q", max_gpus_per_job=8))
        queue.submit(make_job(job_id="a", n_gpus=3))
        queue.submit(make_job(job_id="b", n_gpus=5))
        assert queue.waiting_gpu_demand() == 8


class TestSegmentedQueueSystem:
    def test_default_queues_exist(self):
        system = SegmentedQueueSystem()
        assert set(system.queues) == {"urgent", "standard", "eco"}

    def test_submit_honours_preference(self):
        system = SegmentedQueueSystem()
        assert system.submit(make_job(n_gpus=2), preferred_queue="urgent") == "urgent"

    def test_oversized_preference_falls_back(self):
        system = SegmentedQueueSystem()
        # urgent only admits up to 4 GPUs; an 8-GPU job lands in standard.
        assert system.submit(make_job(n_gpus=8), preferred_queue="urgent") == "standard"

    def test_huge_job_falls_back_to_largest_queue(self):
        system = SegmentedQueueSystem()
        assert system.submit(make_job(n_gpus=32)) == "eco"

    def test_unroutable_job_rejected(self):
        system = SegmentedQueueSystem()
        with pytest.raises(SchedulingError):
            system.submit(make_job(n_gpus=64))

    def test_duplicate_queue_names_rejected(self):
        policy = QueuePolicy(name="dup", max_gpus_per_job=2)
        with pytest.raises(ConfigurationError):
            SegmentedQueueSystem([policy, policy], default_queue="dup")

    def test_unknown_default_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentedQueueSystem(default_queue="missing")

    def test_queue_lengths_and_demand(self):
        system = SegmentedQueueSystem()
        system.submit(make_job(job_id="a", n_gpus=2), preferred_queue="urgent")
        system.submit(make_job(job_id="b", n_gpus=8))
        lengths = system.queue_lengths()
        assert lengths["urgent"] == 1
        assert lengths["standard"] == 1
        assert system.queue_gpu_demand()["standard"] == 8

    def test_imbalance_balanced_when_empty(self):
        assert SegmentedQueueSystem().imbalance() == pytest.approx(1.0)

    def test_imbalance_grows_when_one_queue_clogged(self):
        system = SegmentedQueueSystem()
        for i in range(10):
            system.submit(make_job(job_id=f"j{i}", n_gpus=4), preferred_queue="urgent")
        assert system.imbalance() > 2.0

    def test_pending_jobs_sorted_by_submit_time(self):
        system = SegmentedQueueSystem()
        system.submit(make_job(job_id="late", submit_time_h=5.0))
        system.submit(make_job(job_id="early", submit_time_h=1.0))
        assert [j.job_id for j in system.pending_jobs()] == ["early", "late"]
