"""Tests for the event queue and the cooling models."""

import numpy as np
import pytest

from repro.cluster.cooling import (
    CoolingConfig,
    CoolingModel,
    FixedOverheadCooling,
    OptimizedCoolingController,
)
from repro.cluster.events import EventQueue, EventType
from repro.errors import ConfigurationError, DataError, SimulationError


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(5.0, EventType.TICK)
        queue.push(1.0, EventType.TICK)
        queue.push(3.0, EventType.TICK)
        times = [queue.pop().time_h for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_finish_before_submit_at_same_time(self):
        queue = EventQueue()
        queue.push(2.0, EventType.JOB_SUBMIT, "submit")
        queue.push(2.0, EventType.JOB_FINISH, "finish")
        assert queue.pop().payload == "finish"
        assert queue.pop().payload == "submit"

    def test_insertion_order_breaks_remaining_ties(self):
        queue = EventQueue()
        queue.push(1.0, EventType.TICK, "a")
        queue.push(1.0, EventType.TICK, "b")
        assert queue.pop().payload == "a"
        assert queue.pop().payload == "b"

    def test_clock_advances(self):
        queue = EventQueue()
        queue.push(4.0, EventType.TICK)
        queue.pop()
        assert queue.now_h == 4.0

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()
        queue.push(4.0, EventType.TICK)
        queue.pop()
        with pytest.raises(SimulationError):
            queue.push(3.0, EventType.TICK)

    def test_pop_empty(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek() is None
        queue.push(1.0, EventType.TICK)
        assert queue.peek_time() == 1.0
        assert len(queue) == 1
        queue.clear()
        assert queue.is_empty()


class TestCoolingModel:
    def test_pue_at_reference(self):
        model = CoolingModel()
        assert float(model.pue(model.config.reference_temperature_c)) == pytest.approx(
            model.config.baseline_pue
        )

    def test_pue_monotone_in_temperature_above_threshold(self):
        model = CoolingModel()
        temps = np.linspace(model.config.free_cooling_threshold_c + 0.1, 40.0, 20)
        pues = np.asarray(model.pue(temps))
        assert np.all(np.diff(pues) >= 0)

    def test_free_cooling_floor(self):
        model = CoolingModel()
        assert float(model.pue(-10.0)) == pytest.approx(model.config.min_pue)

    def test_pue_never_below_min(self):
        model = CoolingModel()
        pues = np.asarray(model.pue(np.linspace(-30, 45, 50)))
        assert np.all(pues >= model.config.min_pue - 1e-12)

    def test_facility_power(self):
        model = CoolingModel()
        it = 100e3
        facility = float(model.facility_power_w(it, 20.0))
        assert facility == pytest.approx(it * float(model.pue(20.0)))

    def test_capacity_overload_penalty(self):
        config = CoolingConfig(cooling_capacity_kw=10.0)
        model = CoolingModel(config)
        # Huge IT load forces the overhead past capacity -> doubled excess.
        overhead = float(model.cooling_power_w(1e6, 35.0))
        unlimited = float(CoolingModel(CoolingConfig(cooling_capacity_kw=1e9)).cooling_power_w(1e6, 35.0))
        assert overhead > unlimited
        assert bool(model.is_overloaded(1e6, 35.0))

    def test_with_capacity_fraction(self):
        model = CoolingModel()
        reduced = model.with_capacity_fraction(0.5)
        assert reduced.config.cooling_capacity_kw == pytest.approx(
            model.config.cooling_capacity_kw * 0.5
        )
        with pytest.raises(DataError):
            model.with_capacity_fraction(0.0)

    def test_water_use(self):
        model = CoolingModel()
        assert float(model.water_use_liters(100.0)) == pytest.approx(
            100.0 * model.config.water_liters_per_kwh_cooling
        )
        with pytest.raises(DataError):
            model.water_use_liters(-1.0)

    def test_negative_it_power_rejected(self):
        with pytest.raises(DataError):
            CoolingModel().cooling_power_w(-1.0, 20.0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CoolingConfig(baseline_pue=0.9)
        with pytest.raises(ConfigurationError):
            CoolingConfig(min_pue=1.5, baseline_pue=1.2)

    def test_from_facility(self):
        from repro.config import FacilityConfig

        facility = FacilityConfig(baseline_pue=1.4)
        config = CoolingConfig.from_facility(facility)
        assert config.baseline_pue == pytest.approx(1.4)


class TestCoolingControllers:
    def test_fixed_overhead_is_weather_insensitive(self):
        fixed = FixedOverheadCooling()
        assert float(fixed.pue(0.0)) == pytest.approx(float(fixed.pue(35.0)))

    def test_optimized_beats_fixed_everywhere(self):
        fixed = FixedOverheadCooling()
        optimized = OptimizedCoolingController()
        temps = np.linspace(-10, 35, 50)
        assert np.all(np.asarray(optimized.pue(temps)) < np.asarray(fixed.pue(temps)))

    def test_annual_cooling_reduction_matches_claim_shape(self, year_calendar):
        """The optimized controller should cut cooling energy by tens of percent
        and PUE overhead by roughly 10-25% (the DeepMind-style claim)."""
        from repro.climate.weather import WeatherModel

        temps = WeatherModel(seed=0).hourly_temperature_c(year_calendar)
        it = np.full(temps.shape, 250e3)
        fixed = FixedOverheadCooling()
        optimized = OptimizedCoolingController()
        fixed_cooling = float(np.sum(fixed.cooling_power_w(it, temps)))
        optimized_cooling = float(np.sum(optimized.cooling_power_w(it, temps)))
        reduction = 1.0 - optimized_cooling / fixed_cooling
        assert 0.25 < reduction < 0.75
        pue_reduction = 1.0 - float(np.mean(optimized.pue(temps))) / float(np.mean(fixed.pue(temps)))
        assert 0.08 < pue_reduction < 0.30
