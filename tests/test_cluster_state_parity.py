"""State-parity tests for the incremental array-backed cluster core.

Three layers of evidence that the delta-maintained state model is exact:

1. **Scalar model parity** — the scalar fast paths of
   :class:`~repro.telemetry.gpu_power.GpuPowerModel` are bit-equal to the
   array API they mirror.
2. **Randomized state parity** — random allocate/release/drain/undrain/re-cap
   sequences keep every incremental counter equal to a brute-force recount
   over the GPU views, and keep the O(1) IT power equal (to float tolerance)
   to both the vectorized recompute checkpoint and a pure-Python reference
   that reproduces the pre-refactor whole-cluster scan arithmetic.
3. **Seeded end-to-end parity** — a pinned SuperCloud-like workload produces
   *bit-identical* job records (hash-pinned against the pre-refactor
   implementation) under all five scheduling policies, with the power series
   agreeing with the recompute checkpoint at every allocation change
   (``parity_check=True``).
"""

import hashlib

import numpy as np
import pytest

from repro.climate.weather import WeatherModel
from repro.cluster.cooling import CoolingModel
from repro.cluster.resources import Cluster, NodeState
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.config import FacilityConfig
from repro.grid.iso_ne import IsoNeLikeGrid
from repro.scheduler.backfill import BackfillScheduler
from repro.scheduler.carbon_aware import CarbonAwareScheduler
from repro.scheduler.deadline_aware import DeadlineAwareScheduler
from repro.scheduler.energy_aware import EnergyAwareScheduler
from repro.scheduler.fifo import FifoScheduler
from repro.telemetry.gpu_power import GpuPowerModel, get_gpu_spec
from repro.timeutils import SimulationCalendar
from repro.workloads.demand import DeadlineDemandModel
from repro.workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator


# ---------------------------------------------------------------------------
# 1. Scalar fast paths vs. the array API
# ---------------------------------------------------------------------------


class TestScalarModelParity:
    @pytest.fixture(params=["V100", "A100", "T4"])
    def model(self, request) -> GpuPowerModel:
        return GpuPowerModel(get_gpu_spec(request.param))

    def test_power_w_scalar_bit_equal(self, model):
        utils = [0.0, 0.1, 0.33, 0.5, 0.72, 0.9, 1.0, 1.7, -0.2]
        caps = [None, 50.0, 100.0, 150.0, 187.5, 250.0, 400.0, 1000.0]
        for util in utils:
            for cap in caps:
                assert model.power_w_scalar(util, cap) == float(model.power_w(util, cap))

    def test_clamp_and_throughput_scalar_bit_equal(self, model):
        for cap in [10.0, 60.0, 100.0, 175.0, 250.0, 400.0, 999.0]:
            assert model.clamp_power_limit_scalar(cap) == float(model.clamp_power_limit(cap))
            for util in [0.2, 0.72, 1.0]:
                assert model.relative_throughput_scalar(cap, util) == float(
                    model.relative_throughput(cap, util)
                )
                assert model.slowdown_factor_scalar(cap, util) == float(
                    model.slowdown_factor(cap, util)
                )

    def test_uncapped_scalar_bit_equal(self, model):
        for util in np.linspace(-0.5, 1.5, 23):
            assert model.uncapped_power_w_scalar(float(util)) == float(
                model.uncapped_power_w(float(util))
            )


# ---------------------------------------------------------------------------
# 2. Randomized incremental-state parity
# ---------------------------------------------------------------------------


def brute_force_it_power(cluster: Cluster) -> float:
    """The pre-refactor whole-cluster scan, kept verbatim as the reference."""
    facility = cluster.facility
    idle_gpu_w = cluster.gpu_spec.idle_power_w
    power = 0.0
    busy_utils: list[float] = []
    busy_caps: list[float] = []
    for node in cluster.nodes:
        if node.state is NodeState.DRAINED:
            continue
        power += facility.node_idle_power_w
        occupied = False
        for gpu in node.gpus:
            if gpu.is_free:
                power += idle_gpu_w
            else:
                occupied = True
                busy_utils.append(gpu.utilization)
                busy_caps.append(
                    gpu.power_limit_w if gpu.power_limit_w is not None else cluster.gpu_spec.tdp_w
                )
        if occupied:
            power += facility.node_active_overhead_w
    if busy_utils:
        power += float(
            np.sum(cluster.gpu_power_model.power_w(np.asarray(busy_utils), np.asarray(busy_caps)))
        )
    return power


def assert_state_parity(cluster: Cluster) -> None:
    """Counters and cached power must match brute-force recounts over the views."""
    free = sum(
        1
        for node in cluster.nodes
        if node.state is not NodeState.DRAINED
        for gpu in node.gpus
        if gpu.is_free
    )
    busy = sum(1 for gpu in cluster.iter_gpus() if not gpu.is_free)
    occupied = sum(1 for node in cluster.nodes if node.is_occupied)
    drained = sum(1 for node in cluster.nodes if node.state is NodeState.DRAINED)
    assert cluster.n_free_gpus == free
    assert cluster.n_busy_gpus == busy
    assert cluster.n_occupied_nodes == occupied
    assert cluster.n_drained_nodes == drained
    for node in cluster.nodes:
        assert node.n_free_gpus == len(node.free_gpus)
        assert node.n_busy_gpus == node.n_gpus - sum(1 for g in node.gpus if g.is_free)
    reference = brute_force_it_power(cluster)
    np.testing.assert_allclose(cluster.it_power_w(), reference, rtol=1e-9, atol=1e-6)
    np.testing.assert_allclose(cluster.recompute_it_power_w(), reference, rtol=1e-12, atol=1e-9)


@pytest.mark.parametrize("seed", [0, 7, 20220527])
def test_randomized_sequences_keep_state_exact(seed):
    rng = np.random.default_rng(seed)
    cluster = Cluster(FacilityConfig(n_nodes=6, gpus_per_node=4), gpu_model="V100")
    live: list[str] = []
    next_id = 0
    for step in range(300):
        op = rng.random()
        if op < 0.45 and cluster.n_free_gpus > 0:
            n_gpus = int(rng.integers(1, cluster.n_free_gpus + 1))
            job_id = f"job-{next_id}"
            next_id += 1
            cap = None if rng.random() < 0.5 else float(rng.uniform(80.0, 300.0))
            cluster.allocate(
                job_id,
                n_gpus,
                utilization=float(rng.uniform(0.05, 1.0)),
                power_limit_w=cap,
                pack=bool(rng.random() < 0.5),
            )
            live.append(job_id)
        elif op < 0.70 and live:
            job_id = live.pop(int(rng.integers(len(live))))
            cluster.release(job_id)
        elif op < 0.85 and live:
            job_id = live[int(rng.integers(len(live)))]
            cap = None if rng.random() < 0.3 else float(rng.uniform(80.0, 300.0))
            cluster.set_power_limit(job_id, cap)
        elif op < 0.95:
            cluster.drain_nodes(int(rng.integers(0, 4)))
        else:
            cluster.undrain_all()
        if step % 10 == 0 or step > 280:
            assert_state_parity(cluster)
    # Drain the cluster empty: the busy-power accumulator must return to 0.
    for job_id in live:
        cluster.release(job_id)
    cluster.undrain_all()
    assert cluster.n_busy_gpus == 0
    assert cluster.n_free_gpus == cluster.total_gpus
    assert cluster.it_power_w() == pytest.approx(brute_force_it_power(cluster), rel=0, abs=0)
    assert_state_parity(cluster)


def test_direct_view_writes_stay_consistent():
    """Out-of-band writes through GPU views keep counters exact and fall back
    to the recompute path for power."""
    cluster = Cluster(FacilityConfig(n_nodes=2, gpus_per_node=2))
    gpu = cluster.nodes[0].gpus[1]
    gpu.allocated_job_id = "rogue"
    gpu.utilization = 0.8
    gpu.power_limit_w = 150.0
    assert cluster.n_free_gpus == 3
    assert cluster.n_busy_gpus == 1
    assert cluster.nodes[0].state is NodeState.ACTIVE
    np.testing.assert_allclose(cluster.it_power_w(), brute_force_it_power(cluster), rtol=1e-12)
    gpu.allocated_job_id = None
    gpu.utilization = 0.0
    gpu.power_limit_w = None
    assert cluster.n_free_gpus == 4
    assert cluster.it_power_w() == pytest.approx(brute_force_it_power(cluster))


def test_allocation_resolves_gpus_directly():
    cluster = Cluster(FacilityConfig(n_nodes=2, gpus_per_node=2))
    allocation = cluster.allocate("a", 3, utilization=0.5)
    gpus = allocation.resolve(cluster)
    assert [(g.node_id, g.index) for g in gpus] == list(allocation.gpu_locations)
    assert all(g.allocated_job_id == "a" for g in gpus)


# ---------------------------------------------------------------------------
# 3. Seeded end-to-end parity with the pre-refactor implementation
# ---------------------------------------------------------------------------

SEED = 1234
FACILITY = FacilityConfig(n_nodes=8, gpus_per_node=4)
HORIZON_H = 14 * 24.0

#: sha256 over the repr of every job record's (id, start, finish, energy, cap,
#: completed, missed-deadline) tuple, captured from the pre-refactor scan-based
#: implementation on this exact workload.  Matching hashes mean bit-identical
#: job-level outcomes.  (The hash is sensitive to libm's pow in the last ulp,
#: so an exotic platform could flip it; the tolerance assertions below are the
#: platform-independent backstop.)
PRE_REFACTOR_RECORD_HASHES = {
    "backfill": "21c6114658ebc0f853785065943f24df30bec46c86a23caeec43501a9e2d3920",
    "fifo": "52f30937aa2ca0af0d198a058a9e0335aff15de1debab2472ca8bdc6c1541dc5",
    "energy-aware": "258f7f7bd6e3f7a889c8536acb4eaedf2526020fec0d3232d61437791ce9299f",
    "carbon-aware": "9d1be27979da14dac3209677b3d8f1677d47ae2503b377e94584a659879666e8",
    "deadline-aware": "4f5bf8d9845cb2627e3c73e965ea4138c9d17fc18a1093f32ea345dba174f202",
}

#: Headline metrics captured from the pre-refactor implementation (full float
#: precision).  ``delivered_gpu_hours``/``mean_wait_h`` derive purely from job
#: records and must match exactly; the energy/cost totals integrate the power
#: series and are allowed one part in 1e12 for the delta-maintained summation.
PRE_REFACTOR_METRICS = {
    "backfill": (1812.7819959080746, 1960.7028294482975, 3744.4164705279586, 3.513885431581352),
    "fifo": (1809.5093644455555, 1955.1587878741482, 3744.4164705279586, 9.344292370784999),
    "energy-aware": (1740.3556805600206, 1882.7477169388428, 3744.4164705279586, 3.693189731961997),
    "carbon-aware": (1781.7806673142989, 1933.6299859039398, 3744.4164705279586, 3.184461630729425),
    "deadline-aware": (1828.7097834634963, 1982.8102422810566, 3744.4164705279586, 2.9088644563804165),
}

SCHEDULERS = {
    "backfill": BackfillScheduler,
    "fifo": FifoScheduler,
    "energy-aware": EnergyAwareScheduler,
    "carbon-aware": CarbonAwareScheduler,
    "deadline-aware": DeadlineAwareScheduler,
}


@pytest.fixture(scope="module")
def parity_world():
    calendar = SimulationCalendar(start_year=2020, n_months=1)
    weather = WeatherModel(seed=SEED).hourly_temperature_c(calendar)
    grid = IsoNeLikeGrid(calendar, seed=SEED)
    generator = SuperCloudTraceGenerator(
        SuperCloudTraceConfig(facility=FACILITY),
        demand_model=DeadlineDemandModel(seed=SEED),
        seed=SEED,
    )
    jobs = generator.generate_jobs(n_jobs=200, horizon_h=HORIZON_H - 48.0)
    return weather, grid, jobs


def _records_fingerprint(result) -> str:
    records = [
        (
            record.job_id,
            record.start_time_h,
            record.finish_time_h,
            record.energy_j,
            record.power_cap_w,
            record.completed,
            record.missed_deadline,
        )
        for record in result.job_records
    ]
    return hashlib.sha256(repr(records).encode()).hexdigest()


@pytest.mark.parametrize("policy", sorted(SCHEDULERS))
def test_end_to_end_matches_pre_refactor(policy, parity_world):
    weather, grid, jobs = parity_world
    simulator = ClusterSimulator(
        Cluster(FACILITY),
        SCHEDULERS[policy](),
        SimulationConfig(horizon_h=HORIZON_H),
        weather_hourly_c=weather,
        cooling=CoolingModel(),
        grid=grid,
        parity_check=True,  # recompute checkpoint verified at every change
    )
    result = simulator.run([job.clone_pending() for job in jobs])
    it_kwh, facility_kwh, delivered, mean_wait = PRE_REFACTOR_METRICS[policy]
    assert result.delivered_gpu_hours == delivered
    assert result.mean_wait_h == mean_wait
    np.testing.assert_allclose(result.it_energy_kwh, it_kwh, rtol=1e-12)
    np.testing.assert_allclose(result.facility_energy_kwh, facility_kwh, rtol=1e-12)
    assert _records_fingerprint(result) == PRE_REFACTOR_RECORD_HASHES[policy]


def test_power_series_matches_recompute_at_every_tick(parity_world):
    """The recorded tick series equals per-tick recomputes of a shadow run."""
    weather, grid, jobs = parity_world
    fast = ClusterSimulator(
        Cluster(FACILITY),
        BackfillScheduler(),
        SimulationConfig(horizon_h=HORIZON_H),
        weather_hourly_c=weather,
        cooling=CoolingModel(),
        grid=grid,
    )
    result = fast.run([job.clone_pending() for job in jobs])
    # PUE series must be exactly the vectorized curve at the tick hours.
    pue_hourly = CoolingModel().pue_series(weather)
    indices = np.minimum(np.maximum(result.tick_times_h, 0.0), HORIZON_H).astype(int)
    np.testing.assert_array_equal(result.pue, pue_hourly[indices])
    # And the final cluster state power must agree with the brute-force scan.
    np.testing.assert_allclose(
        fast.cluster.it_power_w(), brute_force_it_power(fast.cluster), rtol=1e-9
    )
