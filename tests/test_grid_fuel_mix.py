"""Tests for the fuel-mix model (the substrate behind Figs. 2-3)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.grid.fuel_mix import FUEL_TYPES, FuelMixConfig, FuelMixModel, GenerationMix
from repro.timeutils import SimulationCalendar


@pytest.fixture(scope="module")
def year_mix(year_calendar):
    model = FuelMixModel(seed=0)
    return model, model.generate(year_calendar)


class TestFuelMixConfig:
    def test_defaults_valid(self):
        FuelMixConfig()

    def test_rejects_bad_month(self):
        with pytest.raises(ConfigurationError):
            FuelMixConfig(demand_peak_month=13)

    def test_rejects_excessive_baseload(self):
        with pytest.raises(ConfigurationError):
            FuelMixConfig(hydro_share=0.5, nuclear_share=0.5)

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            FuelMixConfig(weather_noise_std=-0.1)


class TestGenerationMix:
    def test_shares_sum_to_one(self, year_mix):
        _, mix = year_mix
        np.testing.assert_allclose(mix.shares.sum(axis=1), 1.0, atol=1e-9)

    def test_shares_non_negative(self, year_mix):
        _, mix = year_mix
        assert np.all(mix.shares >= 0)

    def test_share_of_unknown_fuel(self, year_mix):
        _, mix = year_mix
        with pytest.raises(DataError):
            mix.share_of("coal-to-liquids")

    def test_renewable_share_is_solar_plus_wind(self, year_mix):
        _, mix = year_mix
        np.testing.assert_allclose(
            mix.renewable_share(), mix.share_of("solar") + mix.share_of("wind")
        )

    def test_low_carbon_share_at_least_renewable(self, year_mix):
        _, mix = year_mix
        assert np.all(mix.low_carbon_share() >= mix.renewable_share() - 1e-12)

    def test_shape_validation(self):
        with pytest.raises(DataError):
            GenerationMix(
                hours=np.arange(5.0),
                shares=np.ones((5, 3)),
                demand_mw=np.ones(5),
            )


class TestSeasonality:
    def test_solar_zero_at_night(self):
        model = FuelMixModel(seed=0)
        factor = model.solar_capacity_factor(np.array([100.0]), np.array([2.0]))
        assert float(factor[0]) == pytest.approx(0.0)

    def test_solar_positive_at_noon(self):
        model = FuelMixModel(seed=0)
        factor = model.solar_capacity_factor(np.array([172.0]), np.array([12.5]))
        assert float(factor[0]) > 0.5

    def test_wind_peaks_in_late_winter(self):
        model = FuelMixModel(seed=0)
        march = float(model.wind_capacity_factor(np.array([75.0]))[0])
        august = float(model.wind_capacity_factor(np.array([230.0]))[0])
        assert march > august

    def test_demand_peaks_in_summer(self):
        model = FuelMixModel(seed=0)
        july = float(model.demand_factor(np.array([197.0]), np.array([15.0]))[0])
        april = float(model.demand_factor(np.array([105.0]), np.array([15.0]))[0])
        assert july > april

    def test_monthly_renewable_share_in_paper_band(self, year_calendar, year_mix):
        model, mix = year_mix
        shares = model.monthly_renewable_share(year_calendar, mix)
        assert shares.shape == (12,)
        # Fig. 2/3 show roughly 4%-9% solar+wind share over the year.
        assert shares.min() > 2.0
        assert shares.max() < 12.0

    def test_spring_greener_than_summer(self, year_calendar, year_mix):
        model, mix = year_mix
        shares = model.monthly_renewable_share(year_calendar, mix)
        spring = shares[2:5].mean()  # Mar-May
        summer = shares[5:8].mean()  # Jun-Aug
        assert spring > summer

    def test_reproducible_with_seed(self, year_calendar):
        a = FuelMixModel(seed=5).generate(year_calendar)
        b = FuelMixModel(seed=5).generate(year_calendar)
        np.testing.assert_allclose(a.shares, b.shares)

    def test_different_seeds_differ(self, year_calendar):
        a = FuelMixModel(seed=5).generate(year_calendar)
        b = FuelMixModel(seed=6).generate(year_calendar)
        assert not np.allclose(a.shares, b.shares)

    def test_fuel_types_constant(self):
        assert FUEL_TYPES == ("solar", "wind", "hydro", "nuclear", "natural_gas", "other")
