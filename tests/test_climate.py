"""Tests for the weather model, climate scenarios, and stress catalogue."""

import numpy as np
import pytest

from repro.climate.scenarios import (
    AmplifiedSeasonsScenario,
    ColdSnapScenario,
    CompositeScenario,
    HeatWaveScenario,
    UniformWarmingScenario,
)
from repro.climate.stress_scenarios import STANDARD_STRESS_SCENARIOS, get_stress_scenario
from repro.climate.weather import WeatherConfig, WeatherModel
from repro.config import SiteConfig
from repro.errors import ConfigurationError, DataError
from repro.timeutils import SimulationCalendar


@pytest.fixture(scope="module")
def year_weather(year_calendar):
    model = WeatherModel(seed=0)
    return model, model.hourly_temperature_c(year_calendar)


class TestWeatherModel:
    def test_series_length(self, year_calendar, year_weather):
        _, hourly = year_weather
        assert hourly.shape == (year_calendar.total_hours,)

    def test_summer_warmer_than_winter(self, year_calendar, year_weather):
        model, hourly = year_weather
        monthly = model.monthly_mean_temperature_c(year_calendar, hourly)
        assert monthly[6] > monthly[0]          # July vs January
        assert monthly[6] > monthly[11]         # July vs December

    def test_monthly_means_near_boston_normals(self, year_calendar, year_weather):
        model, hourly = year_weather
        monthly = model.monthly_mean_temperature_c(year_calendar, hourly)
        assert -12.0 < monthly[0] < 5.0          # January
        assert 16.0 < monthly[6] < 30.0          # July

    def test_fahrenheit_conversion(self, year_calendar, year_weather):
        model, hourly = year_weather
        c = model.monthly_mean_temperature_c(year_calendar, hourly)
        f = model.monthly_mean_temperature_f(year_calendar, hourly)
        np.testing.assert_allclose(f, c * 9 / 5 + 32)

    def test_afternoon_warmer_than_early_morning(self):
        model = WeatherModel(WeatherConfig(noise_std_c=0.0))
        afternoon = model.expected_temperature_c(np.array([200.0]), np.array([15.0]))
        dawn = model.expected_temperature_c(np.array([200.0]), np.array([4.0]))
        assert float(afternoon[0]) > float(dawn[0])

    def test_reproducible(self, year_calendar):
        a = WeatherModel(seed=3).hourly_temperature_c(year_calendar)
        b = WeatherModel(seed=3).hourly_temperature_c(year_calendar)
        np.testing.assert_allclose(a, b)

    def test_noise_free_model_is_deterministic_function_of_time(self, small_calendar):
        model = WeatherModel(WeatherConfig(noise_std_c=0.0), seed=1)
        other = WeatherModel(WeatherConfig(noise_std_c=0.0), seed=2)
        np.testing.assert_allclose(
            model.hourly_temperature_c(small_calendar), other.hourly_temperature_c(small_calendar)
        )

    def test_degree_hours_above(self, year_calendar, year_weather):
        model, hourly = year_weather
        dh_low = model.degree_hours_above(year_calendar, -50.0, hourly)
        dh_high = model.degree_hours_above(year_calendar, 60.0, hourly)
        assert dh_low > 0
        assert dh_high == 0.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            WeatherConfig(peak_hour_of_day=25.0)
        with pytest.raises(ConfigurationError):
            WeatherConfig(noise_autocorrelation=1.5)

    def test_custom_site(self, small_calendar):
        hot_site = SiteConfig(name="phoenix", mean_annual_temperature_c=23.0)
        hot = WeatherModel(WeatherConfig(site=hot_site, noise_std_c=0.0)).hourly_temperature_c(small_calendar)
        default = WeatherModel(WeatherConfig(noise_std_c=0.0)).hourly_temperature_c(small_calendar)
        assert hot.mean() > default.mean()


class TestClimateScenarios:
    def test_uniform_warming_adds_offset(self, year_calendar, year_weather):
        _, hourly = year_weather
        warmed = UniformWarmingScenario(2.5).apply(year_calendar, hourly)
        np.testing.assert_allclose(warmed, hourly + 2.5)

    def test_amplified_seasons_preserves_mean(self, year_calendar, year_weather):
        _, hourly = year_weather
        amplified = AmplifiedSeasonsScenario(1.3).apply(year_calendar, hourly)
        assert amplified.mean() == pytest.approx(hourly.mean())
        assert amplified.std() > hourly.std()

    def test_heat_wave_localised(self, year_calendar, year_weather):
        _, hourly = year_weather
        scenario = HeatWaveScenario(start_day=180.0, duration_days=7.0, peak_excess_c=10.0)
        modified = scenario.apply(year_calendar, hourly)
        delta = modified - hourly
        assert delta.max() == pytest.approx(10.0, abs=0.2)
        # Outside the wave the series is untouched.
        assert np.allclose(delta[: 170 * 24], 0.0)
        assert np.allclose(delta[200 * 24 :], 0.0)

    def test_cold_snap_lowers_temperature(self, year_calendar, year_weather):
        _, hourly = year_weather
        scenario = ColdSnapScenario(start_day=20.0, duration_days=5.0, peak_excess_c=12.0)
        modified = scenario.apply(year_calendar, hourly)
        assert modified.min() < hourly.min()

    def test_composite_applies_in_order(self, year_calendar, year_weather):
        _, hourly = year_weather
        composite = CompositeScenario([UniformWarmingScenario(1.0), UniformWarmingScenario(2.0)])
        np.testing.assert_allclose(composite.apply(year_calendar, hourly), hourly + 3.0)
        assert "uniform-warming" in composite.name

    def test_composite_requires_scenarios(self):
        with pytest.raises(ConfigurationError):
            CompositeScenario([])

    def test_wrong_length_rejected(self, year_calendar):
        with pytest.raises(DataError):
            UniformWarmingScenario(1.0).apply(year_calendar, np.zeros(10))

    def test_scenarios_do_not_mutate_input(self, year_calendar, year_weather):
        _, hourly = year_weather
        copy = hourly.copy()
        UniformWarmingScenario(5.0).apply(year_calendar, hourly)
        np.testing.assert_allclose(hourly, copy)


class TestStressCatalogue:
    def test_catalogue_contains_baseline(self):
        names = [s.name for s in STANDARD_STRESS_SCENARIOS]
        assert "baseline" in names
        assert len(names) == len(set(names))

    def test_severities_ordered(self):
        severities = [s.severity for s in STANDARD_STRESS_SCENARIOS]
        assert severities == sorted(severities)

    def test_lookup(self):
        spec = get_stress_scenario("severely-adverse")
        assert spec.severity == 3
        assert spec.cooling_capacity_fraction < 1.0

    def test_unknown_scenario(self):
        with pytest.raises(DataError):
            get_stress_scenario("zombie-apocalypse")

    def test_spec_validation(self):
        from repro.climate.stress_scenarios import StressScenarioSpec

        with pytest.raises(ConfigurationError):
            StressScenarioSpec(name="bad", description="", severity=5)
        with pytest.raises(ConfigurationError):
            StressScenarioSpec(name="bad", description="", cooling_capacity_fraction=0.0)
