"""Tests for the command-line interface."""

import json
import math

import pytest

from repro.cli import _print_rows, build_parser, main
from repro.experiments import experiment_names

#: Fast parameter overrides for the expensive subcommands.
FAST_ARGS = {"optimize": ["--jobs", "25", "--horizon-days", "2"]}


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_figures_with_options(self):
        args = build_parser().parse_args(["--seed", "3", "--months", "12", "figures"])
        assert args.seed == 3
        assert args.months == 12
        assert args.command == "figures"

    def test_parses_shifting_options(self):
        args = build_parser().parse_args(["shifting", "--deferrable", "0.4", "--window", "12"])
        assert args.deferrable == pytest.approx(0.4)
        assert args.window == 12


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NeurIPS" in out
        assert "spring/summer" in out

    def test_powercap(self, capsys):
        assert main(["powercap"]) == 0
        out = capsys.readouterr().out
        assert "energy_savings_pct" in out

    def test_figures_short_horizon(self, capsys):
        assert main(["--months", "12", "figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig.2 corr(power, green share)" in out
        assert "Fig.4 spearman" in out
        # Fig. 5 needs two years and is skipped on a 12-month horizon.
        assert "Fig.5" not in out


class TestRegistryDrivenCLI:
    def test_every_experiment_is_a_subcommand(self):
        parser = build_parser()
        for name in experiment_names():
            args = parser.parse_args(["--months", "6", name, *FAST_ARGS.get(name, [])])
            assert args.command == name

    @pytest.mark.parametrize("command", experiment_names())
    def test_seed_and_months_propagate_to_every_subcommand(self, command, capsys):
        argv = ["--seed", "4", "--months", "6", "--json", command, *FAST_ARGS.get(command, [])]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == command
        assert payload["spec"]["seed"] == 4
        assert payload["spec"]["n_months"] == 6

    def test_shared_flags_accepted_after_subcommand(self, capsys):
        # The documented invocation order (and the CI smoke command).
        assert main(["figures", "--months", "12", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["n_months"] == 12

    def test_subcommand_level_flag_overrides_top_level(self, capsys):
        assert main(["--months", "24", "table1", "--months", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["n_months"] == 6

    def test_scenario_flag_selects_registered_spec(self, capsys):
        assert main(["--scenario", "single-year", "--json", "table1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["n_months"] == 12

    def test_site_flag_overrides_spec_site(self, capsys):
        assert main(["--site", "phoenix-az", "--months", "3", "--json", "figures"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["site"]["name"] == "phoenix-az"

    def test_experiment_params_reach_the_run(self, capsys):
        argv = ["--months", "3", "--json", "shifting", "--deferrable", "0.4", "--window", "12"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["deferrable"] == pytest.approx(0.4)
        assert payload["params"]["window"] == 12

    def test_json_output_is_strict(self, capsys):
        assert main(["--months", "3", "--json", "powercap"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert "NaN" not in out
        assert payload["rows"][0]["energy_savings_pct"] is not None


class TestPrintRows:
    def test_handles_none_and_nan(self, capsys):
        _print_rows([{"a": None, "b": float("nan")}, {"a": 1.25, "b": math.inf}])
        out = capsys.readouterr().out
        assert "-" in out
        assert "nan" in out
        assert "inf" in out

    def test_handles_ragged_records(self, capsys):
        _print_rows([{"a": 1}, {"b": 2}])
        out = capsys.readouterr().out
        assert "a" in out and "b" in out

    def test_empty(self, capsys):
        _print_rows([])
        assert "(no rows)" in capsys.readouterr().out
