"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_figures_with_options(self):
        args = build_parser().parse_args(["--seed", "3", "--months", "12", "figures"])
        assert args.seed == 3
        assert args.months == 12
        assert args.command == "figures"

    def test_parses_shifting_options(self):
        args = build_parser().parse_args(["shifting", "--deferrable", "0.4", "--window", "12"])
        assert args.deferrable == pytest.approx(0.4)
        assert args.window == 12


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NeurIPS" in out
        assert "spring/summer" in out

    def test_powercap(self, capsys):
        assert main(["powercap"]) == 0
        out = capsys.readouterr().out
        assert "energy_savings_pct" in out

    def test_figures_short_horizon(self, capsys):
        assert main(["--months", "12", "figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig.2 corr(power, green share)" in out
        assert "Fig.4 spearman" in out
        # Fig. 5 needs two years and is skipped on a 12-month horizon.
        assert "Fig.5" not in out
