"""Tests for the command-line interface."""

import csv
import io
import json
import math

import pytest

from repro.cli import _print_rows, build_parser, main
from repro.experiments import experiment_names

#: Fast parameter overrides for the expensive subcommands.
FAST_ARGS = {
    "optimize": ["--jobs", "25", "--horizon-days", "2"],
    "schedule": ["--jobs", "25", "--horizon-days", "2"],
}


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_figures_with_options(self):
        args = build_parser().parse_args(["--seed", "3", "--months", "12", "figures"])
        assert args.seed == 3
        assert args.months == 12
        assert args.command == "figures"

    def test_parses_shifting_options(self):
        args = build_parser().parse_args(["shifting", "--deferrable", "0.4", "--window", "12"])
        assert args.deferrable == pytest.approx(0.4)
        assert args.window == 12


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NeurIPS" in out
        assert "spring/summer" in out

    def test_powercap(self, capsys):
        assert main(["powercap"]) == 0
        out = capsys.readouterr().out
        assert "energy_savings_pct" in out

    def test_figures_short_horizon(self, capsys):
        assert main(["--months", "12", "figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig.2 corr(power, green share)" in out
        assert "Fig.4 spearman" in out
        # Fig. 5 needs two years and is skipped on a 12-month horizon.
        assert "Fig.5" not in out


class TestRegistryDrivenCLI:
    def test_every_experiment_is_a_subcommand(self):
        parser = build_parser()
        for name in experiment_names():
            args = parser.parse_args(["--months", "6", name, *FAST_ARGS.get(name, [])])
            assert args.command == name

    @pytest.mark.parametrize("command", experiment_names())
    def test_seed_and_months_propagate_to_every_subcommand(self, command, capsys):
        argv = ["--seed", "4", "--months", "6", "--json", command, *FAST_ARGS.get(command, [])]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == command
        assert payload["spec"]["seed"] == 4
        assert payload["spec"]["n_months"] == 6

    def test_shared_flags_accepted_after_subcommand(self, capsys):
        # The documented invocation order (and the CI smoke command).
        assert main(["figures", "--months", "12", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["n_months"] == 12

    def test_subcommand_level_flag_overrides_top_level(self, capsys):
        assert main(["--months", "24", "table1", "--months", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["n_months"] == 6

    def test_scenario_flag_selects_registered_spec(self, capsys):
        assert main(["--scenario", "single-year", "--json", "table1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["n_months"] == 12

    def test_site_flag_overrides_spec_site(self, capsys):
        assert main(["--site", "phoenix-az", "--months", "3", "--json", "figures"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["site"]["name"] == "phoenix-az"

    def test_experiment_params_reach_the_run(self, capsys):
        argv = ["--months", "3", "--json", "shifting", "--deferrable", "0.4", "--window", "12"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["deferrable"] == pytest.approx(0.4)
        assert payload["params"]["window"] == 12

    def test_json_output_is_strict(self, capsys):
        assert main(["--months", "3", "--json", "powercap"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert "NaN" not in out
        assert payload["rows"][0]["energy_savings_pct"] is not None


class TestSweepCommand:
    def test_sweep_text_output(self, capsys):
        argv = ["sweep", "--experiments", "table1,powercap", "--grid", "seed=0,1"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "point_seed" in out
        assert "4 campaign point(s) across 2 experiment(s)" in out

    def test_sweep_json_rows(self, capsys):
        argv = [
            "sweep", "--experiments", "table1", "--grid", "seed=0,1",
            "--grid", "n_months=3,4", "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_points"] == 4
        assert [row["seed"] for row in payload["rows"]] == [0, 0, 1, 1]
        assert payload["campaign"]["scenario_grid"]["n_months"] == [3, 4]

    def test_sweep_parallel_rows_match_serial(self, capsys):
        argv = [
            "sweep", "--experiments", "table1,powercap",
            "--grid", "seed=0,1", "--grid", "n_months=3,4", "--json",
        ]
        assert main(argv) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main([*argv, "--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial["rows"] == parallel["rows"]

    def test_sweep_csv_output(self, capsys):
        argv = ["sweep", "--experiments", "table1", "--grid", "seed=0,1", "--csv"]
        assert main(argv) == 0
        parsed = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
        assert len(parsed) == 2
        assert parsed[0]["experiment"] == "table1"

    def test_sweep_json_and_csv_conflict(self, capsys):
        argv = ["sweep", "--experiments", "table1", "--json", "--csv"]
        assert main(argv) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_sweep_param_grid_uses_declared_types(self, capsys):
        argv = [
            "--months", "3", "sweep", "--experiments", "shifting",
            "--grid", "deferrable=0.2,0.4", "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["deferrable"] for row in payload["rows"]] == [0.2, 0.4]

    def test_sweep_site_grid(self, capsys):
        argv = [
            "--months", "3", "sweep", "--experiments", "table1",
            "--grid", "site=holyoke-ma,phoenix-az", "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["site"] for row in payload["rows"]] == ["holyoke-ma", "phoenix-az"]

    def test_sweep_unknown_grid_key_errors(self, capsys):
        argv = ["sweep", "--experiments", "table1", "--grid", "bogus=1"]
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "unknown grid key" in err and "seed" in err

    def test_sweep_duplicate_grid_key_errors(self, capsys):
        argv = ["sweep", "--experiments", "table1", "--grid", "seed=0,1", "--grid", "seed=2,3"]
        assert main(argv) == 1
        assert "duplicate grid key" in capsys.readouterr().err

    def test_sweep_malformed_grid_errors(self, capsys):
        assert main(["sweep", "--experiments", "table1", "--grid", "seed"]) == 1
        assert "KEY=V1,V2" in capsys.readouterr().err

    def test_sweep_unparseable_grid_value_errors(self, capsys):
        assert main(["sweep", "--experiments", "table1", "--grid", "seed=zero"]) == 1
        assert "could not parse" in capsys.readouterr().err


class TestWorkersFlag:
    def test_workers_accepted_by_experiment_subcommands(self, capsys):
        assert main(["--months", "2", "--workers", "2", "--json", "stress"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "stress"

    def test_env_fallback(self, capsys, monkeypatch):
        monkeypatch.setenv("GREENHPC_WORKERS", "2")
        argv = ["sweep", "--experiments", "table1", "--grid", "seed=0,1"]
        assert main(argv) == 0
        assert "2 worker(s)" in capsys.readouterr().out

    def test_flag_overrides_env(self, capsys, monkeypatch):
        monkeypatch.setenv("GREENHPC_WORKERS", "4")
        argv = ["--workers", "1", "sweep", "--experiments", "table1", "--grid", "seed=0,1"]
        assert main(argv) == 0
        assert "1 worker(s)" in capsys.readouterr().out

    def test_invalid_env_value_errors(self, capsys, monkeypatch):
        monkeypatch.setenv("GREENHPC_WORKERS", "many")
        assert main(["sweep", "--experiments", "table1"]) == 1
        assert "GREENHPC_WORKERS" in capsys.readouterr().err

    def test_negative_workers_rejected(self, capsys):
        assert main(["--workers", "-1", "sweep", "--experiments", "table1"]) == 1
        assert "n_workers" in capsys.readouterr().err


class TestPoliciesSubcommand:
    def test_lists_registry_and_stages(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        # Every registered policy and its canned pipeline spelling appear.
        for name in ("fifo", "backfill", "energy-aware", "carbon-aware", "deadline-aware"):
            assert name in out
        assert "backfill+carbon(cap=0.7)" in out
        # Stage tokens with parameters and kinds are listed.
        for token in ("edf", "sjf", "budget", "price", "renewable", "slack", "adaptive"):
            assert token in out
        assert "ceiling=<required>" in out

    def test_json_output(self, capsys):
        assert main(["policies", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {row["policy"] for row in payload["policies"]} >= {
            "fifo",
            "backfill",
            "energy-aware",
            "carbon-aware",
            "deadline-aware",
        }
        kinds = {row["kind"] for row in payload["stages"]}
        assert kinds == {"ordering", "placement", "gate", "power"}

    def test_optimize_error_references_policies_subcommand(self, capsys):
        assert main(["--months", "2", "optimize", "--policies", "warp-speed"]) == 1
        err = capsys.readouterr().err
        assert "greenhpc policies" in err


class TestComposedPolicyGrids:
    def test_grid_values_split_on_top_level_commas_only(self, capsys):
        argv = [
            "--months", "2", "sweep", "--experiments", "schedule",
            "--grid", "policy=backfill,backfill+carbon(cap=0.7)",
            "--grid", "jobs=25", "--grid", "horizon_days=2",
            "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        policies = [row["policy"] for row in payload["rows"]]
        assert policies == ["backfill", "backfill+carbon(cap=0.7)"]

    def test_schedule_subcommand_accepts_spec_string(self, capsys):
        argv = [
            "--months", "2", "schedule",
            "--policy", "edf+backfill+slack(margin=2.0)",
            "--jobs", "25", "--horizon-days", "2", "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["policy"] == "edf+backfill+slack(margin=2.0)"
        assert payload["scalars"]["delivered_gpu_hours"] > 0


class TestPrintRows:
    def test_handles_none_and_nan(self, capsys):
        _print_rows([{"a": None, "b": float("nan")}, {"a": 1.25, "b": math.inf}])
        out = capsys.readouterr().out
        assert "-" in out
        assert "nan" in out
        assert "inf" in out

    def test_handles_ragged_records(self, capsys):
        _print_rows([{"a": 1}, {"b": 2}])
        out = capsys.readouterr().out
        assert "a" in out and "b" in out

    def test_empty(self, capsys):
        _print_rows([])
        assert "(no rows)" in capsys.readouterr().out
