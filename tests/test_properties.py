"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cooling import CoolingModel
from repro.cluster.events import EventQueue, EventType
from repro.core.policies import LoadShiftingPolicy, _shift_load
from repro.grid.storage import BatteryStorage, StorageConfig
from repro.telemetry.gpu_power import GpuPowerModel, get_gpu_spec
from repro.timeutils import SimulationCalendar
from repro.units import carbon_from_energy, joules_to_kwh, kwh_to_joules


MODEL = GpuPowerModel(get_gpu_spec("V100"))


class TestUnitProperties:
    @given(st.floats(min_value=0.0, max_value=1e15, allow_nan=False))
    def test_kwh_joules_roundtrip(self, kwh):
        assert float(joules_to_kwh(kwh_to_joules(kwh))) == pytest.approx(kwh, rel=1e-12)

    @given(
        st.floats(min_value=0.0, max_value=1e12),
        st.floats(min_value=0.0, max_value=2000.0),
    )
    def test_carbon_non_negative_and_linear(self, energy_j, intensity):
        single = float(carbon_from_energy(energy_j, intensity))
        double = float(carbon_from_energy(2.0 * energy_j, intensity))
        assert single >= 0.0
        assert double == pytest.approx(2.0 * single, rel=1e-9)


class TestGpuPowerProperties:
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_power_between_idle_and_tdp(self, utilization):
        power = float(MODEL.power_w(utilization))
        assert MODEL.spec.idle_power_w - 1e-9 <= power <= MODEL.spec.tdp_w + 1e-9

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=50.0, max_value=300.0),
    )
    def test_capped_power_never_exceeds_cap_or_uncapped(self, utilization, cap):
        capped = float(MODEL.power_w(utilization, cap))
        uncapped = float(MODEL.power_w(utilization))
        enforced = float(MODEL.clamp_power_limit(cap))
        assert capped <= enforced + 1e-9
        assert capped <= uncapped + 1e-9

    @given(
        st.floats(min_value=0.1, max_value=1.0),
        st.floats(min_value=100.0, max_value=250.0),
    )
    def test_slowdown_at_least_one_and_energy_never_higher(self, utilization, cap):
        slowdown = float(MODEL.slowdown_factor(cap, utilization))
        assert slowdown >= 1.0 - 1e-12
        capped_energy = float(MODEL.energy_for_work(3600.0, utilization, cap))
        uncapped_energy = float(MODEL.energy_for_work(3600.0, utilization))
        assert capped_energy <= uncapped_energy + 1e-6


class TestCoolingProperties:
    @given(st.floats(min_value=-30.0, max_value=45.0), st.floats(min_value=1.0, max_value=1e6))
    def test_facility_power_at_least_it_power(self, temperature, it_power):
        model = CoolingModel()
        facility = float(model.facility_power_w(it_power, temperature))
        assert facility >= it_power - 1e-9

    @given(st.floats(min_value=-30.0, max_value=45.0))
    def test_pue_at_least_min(self, temperature):
        model = CoolingModel()
        assert float(model.pue(temperature)) >= model.config.min_pue - 1e-12


class TestBatteryProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["charge", "discharge", "idle"]),
                st.floats(min_value=0.0, max_value=500.0),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_soc_bounded_and_energy_balanced(self, operations):
        battery = BatteryStorage(StorageConfig(capacity_kwh=800.0, self_discharge_per_hour=0.0))
        for op, amount in operations:
            if op == "charge":
                battery.charge(amount)
            elif op == "discharge":
                battery.discharge(amount)
            else:
                battery.idle(1.0)
        assert -1e-9 <= battery.soc_kwh <= battery.config.capacity_kwh + 1e-9
        balance = (
            battery.total_charged_kwh - battery.total_discharged_kwh - battery.total_losses_kwh
        )
        assert balance == pytest.approx(battery.soc_kwh, abs=1e-6)


class TestLoadShiftingProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=8, max_size=96),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=48),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_conserved_and_non_negative(self, load, fraction, window):
        load_arr = np.asarray(load)
        signal = np.cos(np.arange(load_arr.shape[0]))
        policy = LoadShiftingPolicy(deferrable_fraction=fraction, window_h=window, signal="carbon")
        shifted = _shift_load(load_arr, signal, policy)
        assert shifted.min() >= -1e-9
        assert shifted.sum() == pytest.approx(load_arr.sum(), rel=1e-9, abs=1e-6)


class TestCalendarProperties:
    @given(st.integers(min_value=2018, max_value=2030), st.integers(min_value=1, max_value=36))
    @settings(max_examples=30, deadline=None)
    def test_month_boundaries_partition_the_horizon(self, start_year, n_months):
        calendar = SimulationCalendar(start_year, n_months)
        total = sum(calendar.month_length_hours(i) for i in range(n_months))
        assert total == calendar.total_hours
        # Every hour maps to exactly one month and the mapping is monotone.
        hours = np.linspace(0, calendar.total_hours - 1, num=min(200, calendar.total_hours))
        indices = calendar.month_indices_for_hours(hours)
        assert np.all(np.diff(indices) >= 0)
        assert indices[0] == 0
        assert indices[-1] == n_months - 1

    @given(st.integers(min_value=1, max_value=24))
    @settings(max_examples=20, deadline=None)
    def test_monthly_mean_of_constant_is_constant(self, n_months):
        calendar = SimulationCalendar(2020, n_months)
        values = np.full(calendar.total_hours, 3.7)
        np.testing.assert_allclose(calendar.monthly_mean(values), 3.7)


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_events_pop_in_time_order(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, EventType.TICK)
        popped = [queue.pop().time_h for _ in range(len(times))]
        assert popped == sorted(popped)
