"""Tests for the cluster resource model (allocation, release, power)."""

import pytest

from repro.config import FacilityConfig
from repro.cluster.resources import Cluster, NodeState
from repro.errors import ResourceError


@pytest.fixture()
def cluster() -> Cluster:
    return Cluster(FacilityConfig(n_nodes=4, gpus_per_node=2), gpu_model="V100")


class TestCapacity:
    def test_total_and_free(self, cluster):
        assert cluster.total_gpus == 8
        assert cluster.n_free_gpus == 8
        assert cluster.n_busy_gpus == 0

    def test_can_fit(self, cluster):
        assert cluster.can_fit(8)
        assert not cluster.can_fit(9)
        with pytest.raises(ResourceError):
            cluster.can_fit(0)

    def test_utilization_fraction(self, cluster):
        assert cluster.gpu_utilization_fraction() == 0.0
        cluster.allocate("a", 4)
        assert cluster.gpu_utilization_fraction() == pytest.approx(0.5)


class TestAllocation:
    def test_allocate_and_release(self, cluster):
        allocation = cluster.allocate("job1", 3, utilization=0.9)
        assert allocation.n_gpus == 3
        assert cluster.n_free_gpus == 5
        released = cluster.release("job1")
        assert released.job_id == "job1"
        assert cluster.n_free_gpus == 8

    def test_double_allocation_rejected(self, cluster):
        cluster.allocate("job1", 1)
        with pytest.raises(ResourceError):
            cluster.allocate("job1", 1)

    def test_release_unknown_job(self, cluster):
        with pytest.raises(ResourceError):
            cluster.release("ghost")

    def test_over_allocation_rejected(self, cluster):
        with pytest.raises(ResourceError):
            cluster.allocate("big", 9)

    def test_packing_minimises_occupied_nodes(self, cluster):
        cluster.allocate("a", 2, pack=True)
        cluster.allocate("b", 2, pack=True)
        assert cluster.n_occupied_nodes == 2

    def test_spreading_maximises_occupied_nodes(self, cluster):
        cluster.allocate("a", 2, pack=False)
        cluster.allocate("b", 2, pack=False)
        assert cluster.n_occupied_nodes >= 3

    def test_node_state_refresh(self, cluster):
        cluster.allocate("a", 2)
        active_nodes = [n for n in cluster.nodes if n.state is NodeState.ACTIVE]
        assert len(active_nodes) == cluster.n_occupied_nodes
        cluster.release("a")
        assert all(n.state is NodeState.IDLE for n in cluster.nodes)

    def test_set_power_limit(self, cluster):
        cluster.allocate("a", 2)
        cluster.set_power_limit("a", 150.0)
        limits = [g.power_limit_w for g in cluster.iter_gpus() if g.allocated_job_id == "a"]
        assert limits == [150.0, 150.0]
        with pytest.raises(ResourceError):
            cluster.set_power_limit("ghost", 150.0)

    def test_release_resets_gpu_state(self, cluster):
        cluster.allocate("a", 2, utilization=0.8, power_limit_w=180.0)
        cluster.release("a")
        for gpu in cluster.iter_gpus():
            assert gpu.is_free
            assert gpu.utilization == 0.0
            assert gpu.power_limit_w is None


class TestDraining:
    def test_drain_reduces_capacity(self, cluster):
        drained = cluster.drain_nodes(2)
        assert drained == 2
        assert cluster.n_free_gpus == 4
        assert cluster.n_drained_nodes == 2

    def test_drain_only_idle_nodes(self, cluster):
        cluster.allocate("a", 8)  # occupy everything
        assert cluster.drain_nodes(2) == 0

    def test_undrain_restores(self, cluster):
        cluster.drain_nodes(3)
        cluster.undrain_all()
        assert cluster.n_free_gpus == 8
        assert cluster.n_drained_nodes == 0

    def test_negative_drain_rejected(self, cluster):
        with pytest.raises(ResourceError):
            cluster.drain_nodes(-1)


class TestPower:
    def test_idle_power(self, cluster):
        expected = 4 * (cluster.facility.node_idle_power_w + 2 * cluster.gpu_spec.idle_power_w)
        assert cluster.it_power_w() == pytest.approx(expected)

    def test_power_increases_with_allocation(self, cluster):
        idle = cluster.it_power_w()
        cluster.allocate("a", 4, utilization=1.0)
        assert cluster.it_power_w() > idle

    def test_power_cap_reduces_power(self, cluster):
        cluster.allocate("a", 4, utilization=1.0)
        uncapped = cluster.it_power_w()
        cluster.set_power_limit("a", 150.0)
        assert cluster.it_power_w() < uncapped

    def test_drained_nodes_draw_nothing(self, cluster):
        idle = cluster.it_power_w()
        cluster.drain_nodes(2)
        assert cluster.it_power_w() == pytest.approx(idle / 2)

    def test_incremental_power_matches_recompute(self, cluster):
        """The delta-maintained O(1) power tracks the vectorized recompute."""
        cluster.allocate("a", 3, utilization=0.7, power_limit_w=180.0)
        cluster.allocate("b", 2, utilization=1.0)
        cluster.set_power_limit("b", 140.0)
        cluster.drain_nodes(1)
        assert cluster.it_power_w() == pytest.approx(cluster.recompute_it_power_w(), rel=1e-12)
        cluster.release("a")
        cluster.undrain_all()
        assert cluster.it_power_w() == pytest.approx(cluster.recompute_it_power_w(), rel=1e-12)

    def test_set_power_limit_updates_cached_power(self, cluster):
        cluster.allocate("a", 4, utilization=1.0, power_limit_w=150.0)
        capped = cluster.it_power_w()
        cluster.set_power_limit("a", None)
        assert cluster.it_power_w() > capped
        assert cluster.it_power_w() == pytest.approx(cluster.recompute_it_power_w(), rel=1e-12)
