"""Tests for the SuperCloud trace generator, conference calendar and demand model."""

import numpy as np
import pytest

from repro.climate.weather import WeatherModel
from repro.config import FacilityConfig
from repro.errors import ConfigurationError, DataError
from repro.scheduler.job import JobState
from repro.timeutils import SimulationCalendar
from repro.workloads.conferences import CONFERENCE_CATALOG, Conference, ConferenceCalendar
from repro.workloads.demand import DeadlineDemandConfig, DeadlineDemandModel
from repro.workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator
from repro.workloads.trends import ComputeTrendModel


class TestConferenceCalendar:
    def test_catalogue_matches_table1_areas(self):
        calendar = ConferenceCalendar()
        areas = set(calendar.areas())
        assert areas == {"NLP/Speech", "Computer Vision", "Robotics", "General ML", "Data Mining"}

    def test_table1_venues_present(self):
        names = {c.name for c in CONFERENCE_CATALOG}
        for expected in ("NeurIPS", "ICLR", "AAAI", "KDD", "ICCV", "ICRA", "EMNLP", "InterSpeech"):
            assert expected in names

    def test_unique_names(self):
        names = [c.name for c in CONFERENCE_CATALOG]
        assert len(names) == len(set(names))

    def test_deadlines_per_month_counts_every_active_venue(self, two_year_calendar):
        calendar = ConferenceCalendar()
        counts = calendar.deadlines_per_month(two_year_calendar)
        assert counts.shape == (24,)
        active_total = sum(
            1
            for month in two_year_calendar.months
            for c in calendar.conferences
            if c.has_deadline_in(month.year) and c.deadline_month_for(month.year) == month.month
        )
        assert counts.sum() == active_total

    def test_2021_spring_cluster_larger_than_2020(self, two_year_calendar):
        """The biennial venues (ICCV etc.) make the Feb-May 2021 deadline count
        exceed Feb-May 2020 — the asymmetry behind Fig. 5's 2021 ramp."""
        counts = ConferenceCalendar().deadlines_per_month(two_year_calendar)
        spring_2020 = counts[1:5].sum()
        spring_2021 = counts[13:17].sum()
        assert spring_2021 >= spring_2020

    def test_deadline_hours_within_horizon(self, year_calendar):
        calendar = ConferenceCalendar()
        for _name, hour in calendar.deadline_hours(year_calendar):
            assert 0 <= hour < year_calendar.total_hours

    def test_spring_summer_concentration(self):
        by_month = ConferenceCalendar().monthly_count_by_month_of_year()
        assert by_month.sum() == len(CONFERENCE_CATALOG)
        spring_summer = by_month[2:8].sum()
        winter = by_month[[10, 11, 0, 1]].sum()
        assert spring_summer > winter

    def test_restructured_uniform_spreads(self):
        uniform = ConferenceCalendar().restructured("uniform")
        by_month = uniform.monthly_count_by_month_of_year()
        assert by_month.max() - by_month.min() <= 1

    def test_restructured_winter_concentrates(self):
        winter = ConferenceCalendar().restructured("winter")
        by_month = winter.monthly_count_by_month_of_year()
        assert by_month[[10, 11, 0, 1, 2]].sum() == len(CONFERENCE_CATALOG)

    def test_restructured_rolling_has_no_deadlines(self, year_calendar):
        rolling = ConferenceCalendar().restructured("rolling")
        assert rolling.deadlines_per_month(year_calendar).sum() == 0
        assert rolling.deadline_hours(year_calendar) == []

    def test_unknown_option(self):
        with pytest.raises(DataError):
            ConferenceCalendar().restructured("quarterly")

    def test_invalid_conference(self):
        with pytest.raises(DataError):
            Conference("X", "ML", 13)

    def test_by_area_markdownable(self):
        table = ConferenceCalendar().by_area()
        assert all(isinstance(v, list) and v for v in table.values())


class TestDeadlineDemandModel:
    def test_occupancy_bounded(self, two_year_calendar):
        model = DeadlineDemandModel(seed=0)
        occupancy = model.hourly_occupancy(two_year_calendar)
        assert occupancy.shape == (two_year_calendar.total_hours,)
        assert occupancy.min() >= 0.0
        assert occupancy.max() <= model.config.max_occupancy + 1e-12

    def test_deadline_component_nonnegative(self, year_calendar):
        model = DeadlineDemandModel(seed=0)
        assert model.deadline_component(year_calendar).min() >= 0.0

    def test_holiday_dip_visible(self, year_calendar):
        config = DeadlineDemandConfig(noise_sigma=0.0, deadline_boost_per_conference=0.0)
        model = DeadlineDemandModel(config, seed=0)
        occupancy = model.hourly_occupancy(year_calendar)
        christmas = occupancy[int(358 * 24) : int(360 * 24)].mean()
        october = occupancy[int(280 * 24) : int(282 * 24)].mean()
        assert christmas < october

    def test_deadline_anticipation_raises_demand_before_deadlines(self, year_calendar):
        config = DeadlineDemandConfig(noise_sigma=0.0)
        with_deadlines = DeadlineDemandModel(config, seed=0)
        rolling = with_deadlines.with_calendar(ConferenceCalendar().restructured("rolling"))
        diff = with_deadlines.hourly_occupancy(year_calendar) - rolling.hourly_occupancy(year_calendar)
        assert diff.min() >= -1e-9
        assert diff.max() > 0.01

    def test_annual_growth(self, two_year_calendar):
        config = DeadlineDemandConfig(noise_sigma=0.0, deadline_boost_per_conference=0.0, annual_growth=0.2)
        model = DeadlineDemandModel(config, seed=0)
        monthly = model.monthly_occupancy(two_year_calendar)
        assert monthly[12:].mean() > monthly[:12].mean()

    def test_monthly_shapes(self, year_calendar):
        model = DeadlineDemandModel(seed=0)
        assert model.monthly_occupancy(year_calendar).shape == (12,)
        assert model.monthly_deadline_counts(year_calendar).shape == (12,)

    def test_reproducible(self, year_calendar):
        a = DeadlineDemandModel(seed=4).hourly_occupancy(year_calendar)
        b = DeadlineDemandModel(seed=4).hourly_occupancy(year_calendar)
        np.testing.assert_allclose(a, b)

    def test_with_calendar_keeps_noise_seed(self, year_calendar):
        model = DeadlineDemandModel(DeadlineDemandConfig(deadline_boost_per_conference=0.0), seed=9)
        clone = model.with_calendar(ConferenceCalendar().restructured("rolling"))
        np.testing.assert_allclose(
            model.hourly_occupancy(year_calendar), clone.hourly_occupancy(year_calendar)
        )

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DeadlineDemandConfig(baseline_occupancy=1.5)
        with pytest.raises(ConfigurationError):
            DeadlineDemandConfig(anticipation_time_constant_days=0.0)


class TestSuperCloudTraces:
    def test_load_trace_power_in_paper_band(self, two_year_calendar):
        generator = SuperCloudTraceGenerator(seed=0)
        weather = WeatherModel(seed=0).hourly_temperature_c(two_year_calendar)
        trace = generator.generate_load_trace(two_year_calendar, weather)
        # Fig. 2/4/5 show monthly averages roughly between 200 and 450 kW.
        assert trace.monthly_power_kw.min() > 150.0
        assert trace.monthly_power_kw.max() < 550.0
        assert trace.monthly_power_kw.shape == (24,)

    def test_it_power_monotone_in_occupancy(self):
        generator = SuperCloudTraceGenerator(seed=0)
        occupancy = np.linspace(0, 1, 11)
        power = generator.it_power_from_occupancy(occupancy)
        assert np.all(np.diff(power) > 0)

    def test_facility_power_at_least_it_power(self, year_calendar):
        generator = SuperCloudTraceGenerator(seed=0)
        weather = WeatherModel(seed=0).hourly_temperature_c(year_calendar)
        trace = generator.generate_load_trace(year_calendar, weather)
        assert np.all(trace.facility_power_w >= trace.it_power_w - 1e-9)

    def test_weather_length_mismatch_rejected(self, year_calendar):
        generator = SuperCloudTraceGenerator(seed=0)
        with pytest.raises(DataError):
            generator.generate_load_trace(year_calendar, np.zeros(10))

    def test_job_generation_basic(self, small_facility):
        generator = SuperCloudTraceGenerator(SuperCloudTraceConfig(facility=small_facility), seed=1)
        jobs = generator.generate_jobs(n_jobs=50, horizon_h=24.0)
        assert len(jobs) == 50
        assert all(job.state is JobState.PENDING for job in jobs)
        assert all(0 <= job.submit_time_h <= 24.0 for job in jobs)
        assert all(job.n_gpus in (1, 2, 4, 8, 16, 32) for job in jobs)
        submit_times = [job.submit_time_h for job in jobs]
        assert submit_times == sorted(submit_times)

    def test_job_generation_fraction_controls(self):
        generator = SuperCloudTraceGenerator(seed=2)
        jobs = generator.generate_jobs(
            n_jobs=200, horizon_h=100.0, deferrable_fraction=1.0, deadline_fraction=0.0
        )
        assert all(job.deferrable for job in jobs)
        assert all(job.deadline_h is None for job in jobs)

    def test_job_generation_arrival_weights(self):
        generator = SuperCloudTraceGenerator(seed=3)
        # All arrival weight in the first fifth of the window.
        weights = [1.0, 0.0001, 0.0001, 0.0001, 0.0001]
        jobs = generator.generate_jobs(n_jobs=200, horizon_h=100.0, arrival_weights=weights)
        early = sum(1 for job in jobs if job.submit_time_h < 20.0)
        assert early > 150

    def test_job_generation_validation(self):
        generator = SuperCloudTraceGenerator(seed=0)
        with pytest.raises(ConfigurationError):
            generator.generate_jobs(n_jobs=0, horizon_h=10.0)


class TestComputeTrends:
    def test_doubling_times_match_figure1(self):
        model = ComputeTrendModel()
        fits = model.fit_all()
        # Pre-2012: roughly Moore's-law doubling (around two years).
        assert 14.0 < fits["pre-2012"].doubling_time_months < 32.0
        # Modern era: months-scale doubling (the paper quotes ~3.4 months).
        assert 2.0 < fits["modern"].doubling_time_months < 8.0

    def test_growth_acceleration(self):
        assert ComputeTrendModel().growth_acceleration() > 3.0

    def test_fits_explain_variance(self):
        fits = ComputeTrendModel().fit_all()
        assert fits["pre-2012"].r_squared > 0.7
        assert fits["modern"].r_squared > 0.5

    def test_projection_is_increasing(self):
        model = ComputeTrendModel()
        assert model.projected_compute(2023.0) > model.projected_compute(2021.0)

    def test_scatter_series(self):
        series = ComputeTrendModel().scatter_series()
        assert series["year"].shape == series["compute_pfs_days"].shape
        assert series["is_modern"].dtype == bool

    def test_era_validation(self):
        with pytest.raises(DataError):
            ComputeTrendModel().era_systems("mesozoic")
