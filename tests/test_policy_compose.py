"""Tests for the composable policy pipeline, its grammar and its parity.

Four layers of evidence:

1. **Grammar** — ``PolicySpec`` parse -> str round-trips (property-based over
   both arbitrary grammar-valid tokens and the registered vocabulary), and
   invalid specs raise :class:`SchedulingError` naming the offending token.
2. **Composition parity (hash-pinned)** — every legacy registry name builds a
   pipeline whose job records are *bit-identical* to the pre-refactor
   monolithic schedulers, pinned on the seeded ``supercloud-small`` /
   ``supercloud-medium`` scenarios across cap and facility-budget settings,
   and on the ``tests/test_cluster_state_parity.py`` world (whose pinned
   hashes date back to the pre-pipeline *and* pre-array-refactor seed
   implementation).
3. **Explicit spellings** — the canned compositions equal their explicit
   pipeline spelling, and the legacy scheduler classes (kept as references)
   equal the pipelines, record for record.
4. **Lifecycle hooks** — simulator observers fire at the documented points,
   attaching them does not perturb results, and the adaptive power-cap stage
   drives running-job caps through the hook API.
"""

import pytest
from hypothesis import given, settings, strategies as st

import test_cluster_state_parity as state_parity

from repro.climate.weather import WeatherModel
from repro.cluster.cooling import CoolingModel
from repro.cluster.observers import SimulatorObserver
from repro.cluster.resources import Cluster
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.core.levers import make_scheduler
from repro.errors import SchedulingError
from repro.experiments.spec import get_scenario
from repro.grid.iso_ne import IsoNeLikeGrid
from repro.scheduler import (
    BackfillScheduler,
    CarbonAwareScheduler,
    DeadlineAwareScheduler,
    EnergyAwareScheduler,
    FifoScheduler,
)
from repro.scheduler.compose import (
    PolicySpec,
    StageSpec,
    build_pipeline,
    list_stage_definitions,
    parse_policy,
    split_top_level,
)
from repro.scheduler.pipeline import PolicyPipeline
from repro.timeutils import SimulationCalendar
from repro.workloads.demand import DeadlineDemandModel
from repro.workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator

# ---------------------------------------------------------------------------
# 1. Grammar
# ---------------------------------------------------------------------------

_token_names = st.from_regex(r"[a-z][a-z0-9-]{0,8}", fullmatch=True)
_param_keys = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)


def _is_bare_word(text: str) -> bool:
    """Strings that survive value parsing unchanged (not numbers/keywords)."""
    if text.lower() in ("true", "false", "none"):
        return False
    try:
        float(text)
        return False
    except ValueError:
        return True


_param_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
    st.none(),
    st.from_regex(r"[A-Za-z0-9_.:-]{1,12}", fullmatch=True).filter(_is_bare_word),
)

_stage_specs = st.builds(
    StageSpec,
    name=_token_names,
    params=st.lists(
        st.tuples(_param_keys, _param_values), max_size=4, unique_by=lambda kv: kv[0]
    ).map(tuple),
)

_policy_specs = st.builds(
    PolicySpec, stages=st.lists(_stage_specs, min_size=1, max_size=5).map(tuple)
)


class TestGrammarRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(_policy_specs)
    def test_parse_str_round_trip(self, spec):
        assert parse_policy(str(spec)) == spec

    @settings(max_examples=60, deadline=None)
    @given(_policy_specs)
    def test_canonical_form_is_stable(self, spec):
        assert str(parse_policy(str(spec))) == str(spec)

    def test_whitespace_tolerated_but_not_canonical(self):
        spec = parse_policy("  backfill + carbon( cap = 0.7 , grace = 3 ) ")
        assert str(spec) == "backfill+carbon(cap=0.7,grace=3)"

    def test_registered_vocabulary_round_trips_through_build(self):
        # Every registered stage, with its declared defaults rendered
        # explicitly, builds and its pipeline name round-trips.
        for definition in list_stage_definitions():
            params = tuple(
                (p.name, p.default) for p in definition.params if not p.required
            )
            token = StageSpec(name=definition.name, params=params)
            text = str(PolicySpec(stages=(token,)))
            if any(p.required for p in definition.params):
                with pytest.raises(SchedulingError, match="required"):
                    build_pipeline(text)
                continue
            pipeline = build_pipeline(text)
            assert pipeline.name == text
            assert parse_policy(pipeline.name) == parse_policy(text)

    def test_split_top_level_respects_parentheses(self):
        assert split_top_level("backfill,backfill+carbon(cap=0.7,grace=3),fifo") == [
            "backfill",
            "backfill+carbon(cap=0.7,grace=3)",
            "fifo",
        ]


INVALID_SPECS = [
    ("", "non-empty"),
    ("   ", "non-empty"),
    ("warp-speed", "warp-speed"),
    ("backfill+", "empty stage token"),
    ("backfill++fifo", "empty stage token"),
    ("Backfill", "Backfill"),
    ("backfill+carbon(cap)", "cap"),
    ("backfill+carbon(cap=0.7", "unbalanced"),
    ("backfill)", "unbalanced"),
    ("carbon(cap=0.7)+carbon(cap=0.7,cap=0.8)", "duplicate argument 'cap'"),
    ("cap(frac=0.5)", "frac"),
    ("carbon(cap=maybe?)", "maybe"),
    ("adaptive()", "budget_w"),
    ("adaptive(budget_w=none)", "does not accept 'none'"),
    ("cap(fraction=none)", "does not accept 'none'"),
    ("edf+backfill+slack(margin=none)", "does not accept 'none'"),
    ("cap(fraction=true)", "fraction"),
    ("backfill+fifo", "second placement"),
    ("edf+sjf+backfill", "second ordering"),
    ("cap(fraction=1.7)", "cap_fraction"),
]


class TestInvalidSpecs:
    @pytest.mark.parametrize("text,needle", INVALID_SPECS)
    def test_invalid_spec_raises_with_offending_token(self, text, needle):
        with pytest.raises(SchedulingError) as excinfo:
            build_pipeline(text)
        assert needle in str(excinfo.value)


# ---------------------------------------------------------------------------
# 2. Hash-pinned composition parity on supercloud-small / supercloud-medium
# ---------------------------------------------------------------------------

SEED = 20220527
HORIZON_H = 14 * 24.0

#: world -> (n_jobs, binding facility power budget in W)
PARITY_WORLDS = {"supercloud-small": (300, 18000.0), "supercloud-medium": (900, 60000.0)}

#: sha256 fingerprints of the job records produced by the *pre-refactor*
#: ``make_scheduler(name, cap)`` monolithic schedulers on the seeded worlds
#: above, per (world, policy, cap, facility_power_budget_w).  The canned
#: pipeline compositions must reproduce every one bit-for-bit.
PRE_REFACTOR_PIPELINE_HASHES = {
    ("supercloud-small", "fifo", None, None): "08a8b33a51cce6a185882d3f77363901676969bdbb5e0014400c73e5f078121d",
    ("supercloud-small", "fifo", None, 18000.0): "08a8b33a51cce6a185882d3f77363901676969bdbb5e0014400c73e5f078121d",
    ("supercloud-small", "fifo", 0.7, None): "08a8b33a51cce6a185882d3f77363901676969bdbb5e0014400c73e5f078121d",
    ("supercloud-small", "fifo", 0.7, 18000.0): "08a8b33a51cce6a185882d3f77363901676969bdbb5e0014400c73e5f078121d",
    ("supercloud-small", "backfill", None, None): "790271c402fe3b2e91fe4ca838a1b09ebb5e66baab9600dff3ee9a0b7a003da3",
    ("supercloud-small", "backfill", None, 18000.0): "790271c402fe3b2e91fe4ca838a1b09ebb5e66baab9600dff3ee9a0b7a003da3",
    ("supercloud-small", "backfill", 0.7, None): "790271c402fe3b2e91fe4ca838a1b09ebb5e66baab9600dff3ee9a0b7a003da3",
    ("supercloud-small", "backfill", 0.7, 18000.0): "790271c402fe3b2e91fe4ca838a1b09ebb5e66baab9600dff3ee9a0b7a003da3",
    ("supercloud-small", "energy-aware", None, None): "4dfee38a3e59d6bdd63c381a3cfd4d596ce700c81b4c6d8188340f4533003b7d",
    ("supercloud-small", "energy-aware", None, 18000.0): "9311f724f7f0c45cdcf85f9e8ebbce4d0749e303e2f1636076f9f0c2f9558235",
    ("supercloud-small", "energy-aware", 0.7, None): "88cbc147bc4c7dfe304f3bf992c549eedda040d170aaf720a089415ed56e9326",
    ("supercloud-small", "energy-aware", 0.7, 18000.0): "2c8405ec79adc9e9ae39503ca456e7a8e2dedd646d3dadcb14f5485b0b9317e5",
    ("supercloud-small", "carbon-aware", None, None): "32d7be31afce589e533aa528c75a979e83e7cac9355bfc2da34cad366569c53f",
    ("supercloud-small", "carbon-aware", None, 18000.0): "32d7be31afce589e533aa528c75a979e83e7cac9355bfc2da34cad366569c53f",
    ("supercloud-small", "carbon-aware", 0.7, None): "cbaebd31e21166c5f10987635ed66bbe06bdf9cbdec4fd9c6061500ccc86a8fd",
    ("supercloud-small", "carbon-aware", 0.7, 18000.0): "cbaebd31e21166c5f10987635ed66bbe06bdf9cbdec4fd9c6061500ccc86a8fd",
    ("supercloud-small", "deadline-aware", None, None): "6a6453b641196873ac24e472dbc55e11dcd868528dc52aeea665ff3483f2bae2",
    ("supercloud-small", "deadline-aware", None, 18000.0): "6a6453b641196873ac24e472dbc55e11dcd868528dc52aeea665ff3483f2bae2",
    ("supercloud-small", "deadline-aware", 0.7, None): "b7d2279772257c643472e4895d2019ce00aa3bccb8924b9f453fc23fe2fd0cfc",
    ("supercloud-small", "deadline-aware", 0.7, 18000.0): "b7d2279772257c643472e4895d2019ce00aa3bccb8924b9f453fc23fe2fd0cfc",
    ("supercloud-medium", "fifo", None, None): "44775a47fe14727f4452d3d8e12573cc016561521296f1608e5431861cb3b5c4",
    ("supercloud-medium", "fifo", None, 60000.0): "44775a47fe14727f4452d3d8e12573cc016561521296f1608e5431861cb3b5c4",
    ("supercloud-medium", "fifo", 0.7, None): "44775a47fe14727f4452d3d8e12573cc016561521296f1608e5431861cb3b5c4",
    ("supercloud-medium", "fifo", 0.7, 60000.0): "44775a47fe14727f4452d3d8e12573cc016561521296f1608e5431861cb3b5c4",
    ("supercloud-medium", "backfill", None, None): "44775a47fe14727f4452d3d8e12573cc016561521296f1608e5431861cb3b5c4",
    ("supercloud-medium", "backfill", None, 60000.0): "44775a47fe14727f4452d3d8e12573cc016561521296f1608e5431861cb3b5c4",
    ("supercloud-medium", "backfill", 0.7, None): "44775a47fe14727f4452d3d8e12573cc016561521296f1608e5431861cb3b5c4",
    ("supercloud-medium", "backfill", 0.7, 60000.0): "44775a47fe14727f4452d3d8e12573cc016561521296f1608e5431861cb3b5c4",
    ("supercloud-medium", "energy-aware", None, None): "015e8bd111154489fa61224108ded0333c1c3920ada9bc970066ca3716ddbb77",
    ("supercloud-medium", "energy-aware", None, 60000.0): "f5ff8f3e7a62dad2ccd9f56924a0c8d8d4cb88175c9a81d7080943bb95cccf36",
    ("supercloud-medium", "energy-aware", 0.7, None): "34f100588d050df56d54576e8db69868cbea896128ae227a20690fc587bd8a97",
    ("supercloud-medium", "energy-aware", 0.7, 60000.0): "5c86975b48875f3800feb51a5cf51af6e5cf35374b82aa2461dd59f5dd9972a3",
    ("supercloud-medium", "carbon-aware", None, None): "1abeef00251bba5aa23d3bfabdecb6db311b1e863e6246eda8286e3f9ebc0875",
    ("supercloud-medium", "carbon-aware", None, 60000.0): "1abeef00251bba5aa23d3bfabdecb6db311b1e863e6246eda8286e3f9ebc0875",
    ("supercloud-medium", "carbon-aware", 0.7, None): "4dea56aee2a45d9cfb958c023dd12511b1616fcb3a06512985a4979b25645036",
    ("supercloud-medium", "carbon-aware", 0.7, 60000.0): "4dea56aee2a45d9cfb958c023dd12511b1616fcb3a06512985a4979b25645036",
    ("supercloud-medium", "deadline-aware", None, None): "e88c95aed220ff99aef9731ac1df6a5696c024b5a0fd2c332640e514c5043ed8",
    ("supercloud-medium", "deadline-aware", None, 60000.0): "e88c95aed220ff99aef9731ac1df6a5696c024b5a0fd2c332640e514c5043ed8",
    ("supercloud-medium", "deadline-aware", 0.7, None): "1b1ef7c3760805fa5a6d597b84e6cfa49b9ec2fce64b14747d05424dcdf34b66",
    ("supercloud-medium", "deadline-aware", 0.7, 60000.0): "1b1ef7c3760805fa5a6d597b84e6cfa49b9ec2fce64b14747d05424dcdf34b66",
}

#: The explicit pipeline spelling of each *default-constructed* legacy
#: scheduler class (the parity references kept in the scheduler package).
EXPLICIT_SPELLINGS = {
    "fifo": "fifo",
    "backfill": "backfill",
    "energy-aware": "backfill+cap(fraction=0.75)+budget",
    "carbon-aware": "backfill+carbon(cap=0.7)",
    "deadline-aware": "edf+backfill+slack(margin=2.0)",
}


@pytest.fixture(scope="module")
def compose_worlds():
    worlds = {}
    for name, (n_jobs, _budget) in PARITY_WORLDS.items():
        facility = get_scenario(name).facility
        calendar = SimulationCalendar(start_year=2020, n_months=1)
        weather = WeatherModel(seed=SEED).hourly_temperature_c(calendar)
        grid = IsoNeLikeGrid(calendar, seed=SEED)
        generator = SuperCloudTraceGenerator(
            SuperCloudTraceConfig(facility=facility),
            demand_model=DeadlineDemandModel(seed=SEED),
            seed=SEED,
        )
        jobs = generator.generate_jobs(n_jobs=n_jobs, horizon_h=HORIZON_H - 48.0)
        worlds[name] = (facility, weather, grid, jobs)
    return worlds


def _run_policy(world, scheduler, budget=None, **simulator_kwargs):
    facility, weather, grid, jobs = world
    simulator = ClusterSimulator(
        Cluster(facility),
        scheduler,
        SimulationConfig(horizon_h=HORIZON_H, facility_power_budget_w=budget),
        weather_hourly_c=weather,
        cooling=CoolingModel(),
        grid=grid,
        **simulator_kwargs,
    )
    return simulator.run([job.clone_pending() for job in jobs])


class TestPinnedCompositionParity:
    @pytest.mark.parametrize("world_name", sorted(PARITY_WORLDS))
    @pytest.mark.parametrize(
        "policy", ["fifo", "backfill", "energy-aware", "carbon-aware", "deadline-aware"]
    )
    @pytest.mark.parametrize("cap", [None, 0.7])
    def test_registry_pipelines_match_pre_refactor(
        self, compose_worlds, world_name, policy, cap
    ):
        for with_budget in (False, True):
            budget = PARITY_WORLDS[world_name][1] if with_budget else None
            scheduler = make_scheduler(policy, cap)
            assert isinstance(scheduler, PolicyPipeline)
            result = _run_policy(compose_worlds[world_name], scheduler, budget=budget)
            expected = PRE_REFACTOR_PIPELINE_HASHES[(world_name, policy, cap, budget)]
            assert state_parity._records_fingerprint(result) == expected

    @pytest.mark.parametrize("policy", sorted(EXPLICIT_SPELLINGS))
    def test_explicit_spelling_equals_canned_composition(self, compose_worlds, policy):
        spelled = build_pipeline(EXPLICIT_SPELLINGS[policy])
        world = compose_worlds["supercloud-small"]
        budget = PARITY_WORLDS["supercloud-small"][1]
        spelled_fp = state_parity._records_fingerprint(
            _run_policy(world, spelled, budget=budget)
        )
        legacy_cls = state_parity.SCHEDULERS[policy]
        legacy_fp = state_parity._records_fingerprint(
            _run_policy(world, legacy_cls(), budget=budget)
        )
        assert spelled_fp == legacy_fp


class TestStateParityHarnessReuse:
    """The pipelines on the test_cluster_state_parity world and its old pins."""

    @pytest.mark.parametrize("policy", sorted(EXPLICIT_SPELLINGS))
    def test_explicit_spelling_matches_seed_implementation_hashes(
        self, policy, parity_world
    ):
        weather, grid, jobs = parity_world
        simulator = ClusterSimulator(
            Cluster(state_parity.FACILITY),
            build_pipeline(EXPLICIT_SPELLINGS[policy]),
            SimulationConfig(horizon_h=state_parity.HORIZON_H),
            weather_hourly_c=weather,
            cooling=CoolingModel(),
            grid=grid,
            parity_check=True,
        )
        result = simulator.run([job.clone_pending() for job in jobs])
        fingerprint = state_parity._records_fingerprint(result)
        assert fingerprint == state_parity.PRE_REFACTOR_RECORD_HASHES[policy]


# Reuse the hash-pinned parity world exactly as test_cluster_state_parity
# builds it (module-scoped there; re-declared here for this module's scope).
parity_world = state_parity.parity_world


# ---------------------------------------------------------------------------
# 3. Composed policies end-to-end
# ---------------------------------------------------------------------------

COMPOSED_POLICIES = [
    "backfill+carbon(cap=0.7)+budget",
    "edf+backfill+slack(margin=2.0)+cap(fraction=0.8)",
    "sjf+backfill+renewable(min_share=0.25)",
    "fifo+price(ceiling=55.0)",
    "backfill+carbon(cap=none,defer_all=true,grace=4.0)+dirty-cap(fraction=0.6)",
    "edf+backfill+deadline-cap(min_fraction=0.5,step=0.05)",
    "backfill+adaptive(budget_w=15000.0,min_fraction=0.5)",
]


class TestComposedPoliciesEndToEnd:
    @pytest.mark.parametrize("spec", COMPOSED_POLICIES)
    def test_composed_policy_runs_and_delivers_work(self, compose_worlds, spec):
        result = _run_policy(compose_worlds["supercloud-small"], make_scheduler(spec))
        assert result.scheduler_name == spec
        assert result.completed_jobs > 0
        assert result.delivered_gpu_hours > 0

    def test_composed_policies_sweep_through_a_campaign(self):
        from repro.experiments import CampaignSpec, run_campaign
        from repro.experiments.spec import ScenarioSpec

        campaign = CampaignSpec(
            experiments=("schedule",),
            base=ScenarioSpec(n_months=2),
            param_grid={
                "policy": COMPOSED_POLICIES[:3] + ["backfill"],
                "jobs": [40],
                "horizon_days": [2.0],
            },
        )
        result = run_campaign(campaign)
        assert len(result) == 4
        assert result.column("policy") == COMPOSED_POLICIES[:3] + ["backfill"]
        assert all(row["delivered_gpu_hours"] > 0 for row in result.rows)


# ---------------------------------------------------------------------------
# 4. Simulator lifecycle hooks
# ---------------------------------------------------------------------------


class RecordingObserver(SimulatorObserver):
    def __init__(self):
        self.starts = []
        self.finishes = []
        self.rounds = 0
        self.ticks = []

    def on_job_start(self, simulator, job, now_h):
        self.starts.append((job.job_id, now_h))

    def on_job_finish(self, simulator, job, now_h, *, completed):
        self.finishes.append((job.job_id, now_h, completed))

    def on_round(self, simulator, now_h, context, decisions):
        self.rounds += 1

    def on_tick(self, simulator, now_h, it_power_w):
        self.ticks.append((now_h, it_power_w))


class TestLifecycleHooks:
    def test_observer_sees_every_lifecycle_event(self, compose_worlds):
        observer = RecordingObserver()
        result = _run_policy(
            compose_worlds["supercloud-small"],
            make_scheduler("backfill"),
            observers=[observer],
        )
        started = [r for r in result.job_records if r.start_time_h is not None]
        finished = [r for r in result.job_records if r.finish_time_h is not None]
        assert len(observer.starts) == len(started)
        assert len(observer.finishes) == len(finished)
        assert {jid for jid, _, completed in observer.finishes if completed} == {
            r.job_id for r in result.job_records if r.completed
        }
        assert observer.rounds > 0
        # One tick callback per recorded tick, with the recorded sample.
        assert len(observer.ticks) == result.tick_times_h.shape[0]
        assert [p for _, p in observer.ticks] == list(result.it_power_w)

    def test_observers_do_not_perturb_results(self, compose_worlds):
        world = compose_worlds["supercloud-small"]
        plain = _run_policy(world, make_scheduler("carbon-aware"))
        observed = _run_policy(
            world, make_scheduler("carbon-aware"), observers=[RecordingObserver()]
        )
        assert state_parity._records_fingerprint(
            observed
        ) == state_parity._records_fingerprint(plain)

    def test_pipeline_observers_attach_automatically(self, compose_worlds):
        scheduler = make_scheduler("backfill+adaptive(budget_w=15000.0)")
        assert len(scheduler.observers()) == 1
        facility, weather, grid, jobs = compose_worlds["supercloud-small"]
        simulator = ClusterSimulator(
            Cluster(facility),
            scheduler,
            SimulationConfig(horizon_h=HORIZON_H),
            weather_hourly_c=weather,
            cooling=CoolingModel(),
            grid=grid,
            parity_check=True,  # recap deltas must stay exact
        )
        result = simulator.run([job.clone_pending() for job in jobs])
        assert simulator.observers == scheduler.observers()
        assert result.completed_jobs > 0
        # The controller tightened caps on running jobs through the hook API.
        assert any(r.power_cap_w is not None for r in result.job_records)

    def test_adaptive_stage_reduces_sustained_power(self, compose_worlds):
        world = compose_worlds["supercloud-small"]
        uncapped = _run_policy(world, make_scheduler("backfill"))
        budget_w = 0.6 * float(uncapped.it_power_w.max())
        adaptive = _run_policy(
            world,
            make_scheduler(f"backfill+adaptive(budget_w={budget_w!r},min_fraction=0.5)"),
        )
        # The follower cannot hold the hard ceiling instantaneously, but the
        # time the cluster spends far above budget must drop.
        assert (adaptive.it_power_w > 1.1 * budget_w).sum() < (
            uncapped.it_power_w > 1.1 * budget_w
        ).sum()
        assert adaptive.it_energy_kwh < uncapped.it_energy_kwh

    def test_adaptive_relaxes_from_chained_cap_not_uncapped(self):
        """The controller is seeded with the pipeline-resolved starting cap.

        Under a slack budget the controller relaxes caps by ``step`` per tick
        *from the cap the power chain imposed* — it must not treat the job as
        uncapped and reset the static cap on its first control step.
        """
        from repro.config import FacilityConfig
        from repro.scheduler.job import Job
        from repro.scheduler.stages import AdaptiveCapStage

        cluster = Cluster(FacilityConfig(n_nodes=1, gpus_per_node=2))
        model = cluster.gpu_power_model
        tdp_w = cluster.gpu_spec.tdp_w
        job = Job(job_id="a", user_id="u", n_gpus=2, duration_h=10.0, submit_time_h=0.0, utilization=1.0)
        stage = AdaptiveCapStage(1e12, min_cap_fraction=0.5, step_fraction=0.05)

        class FakeSimulator:
            def __init__(self, cluster, jobs):
                self.cluster = cluster
                self.running_jobs = list(jobs)

            def refresh_it_power(self):
                pass

        start_cap_w = model.clamp_power_limit_scalar(0.6 * tdp_w)
        cluster.allocate("a", 2, utilization=1.0, power_limit_w=start_cap_w)
        job.mark_started(0.0, power_cap_w=start_cap_w, duration_h=10.0)
        simulator = FakeSimulator(cluster, [job])
        stage.on_job_start(simulator, job, 0.0)
        stage.on_tick(simulator, 1.0, it_power_w=0.0)  # far under budget: relax one step
        assert job.assigned_power_cap_w == model.clamp_power_limit_scalar(0.65 * tdp_w)

    def test_cap_exempt_none_disables_exemptions(self):
        pipeline = build_pipeline("backfill+cap(fraction=0.8,exempt=none)")
        (stage,) = pipeline.power
        assert stage.exempt_queues == frozenset()

    def test_numpy_cap_fractions_accepted(self):
        # np.linspace sweeps hand NumPy scalars to the cap lever; the spec
        # grammar must receive a plain float, not "np.float64(...)".
        import numpy as np

        from repro.core.levers import resolve_policy

        scheduler = make_scheduler("carbon-aware", np.float64(0.6))
        assert any(
            getattr(stage, "cap_fraction", None) == pytest.approx(0.6)
            for stage in scheduler.power
        )
        assert "0.6" in resolve_policy("energy-aware").effective_spec(np.float64(0.6))

    def test_adaptive_energy_attribution_is_time_weighted(self):
        """Re-capped jobs are billed per constant-cap segment, not at the last cap."""
        from repro.config import FacilityConfig
        from repro.scheduler.job import Job
        from repro.scheduler.stages import AdaptiveCapStage

        cluster = Cluster(FacilityConfig(n_nodes=1, gpus_per_node=2))
        job = Job(job_id="a", user_id="u", n_gpus=2, duration_h=10.0, submit_time_h=0.0, utilization=1.0)
        stage = AdaptiveCapStage(1.0, min_cap_fraction=0.5, step_fraction=0.25)

        class FakeSimulator:
            def __init__(self, cluster, jobs):
                self.cluster = cluster
                self.running = list(jobs)

            @property
            def running_jobs(self):
                return list(self.running)

            def refresh_it_power(self):
                pass

        cluster.allocate("a", 2, utilization=1.0)
        job.mark_started(0.0, power_cap_w=None, duration_h=10.0)
        simulator = FakeSimulator(cluster, [job])
        model = cluster.gpu_power_model
        tdp_w = cluster.gpu_spec.tdp_w

        power_uncapped = model.power_w_scalar(1.0, None)
        stage.on_tick(simulator, 4.0, it_power_w=1e9)  # over budget: 1.0 -> 0.75
        cap_1 = job.assigned_power_cap_w
        assert cap_1 == model.clamp_power_limit_scalar(0.75 * tdp_w)
        power_1 = model.power_w_scalar(1.0, cap_1)
        stage.on_tick(simulator, 7.0, it_power_w=1e9)  # 0.75 -> 0.5 (min)
        power_2 = model.power_w_scalar(1.0, job.assigned_power_cap_w)

        job.mark_completed(10.0, energy_j=-1.0)  # the single-cap attribution to replace
        stage.on_job_finish(simulator, job, 10.0, completed=True)
        expected = 2 * (power_uncapped * 4.0 + power_1 * 3.0 + power_2 * 3.0) * 3600.0
        assert job.energy_j == pytest.approx(expected, rel=1e-12)

    def test_add_observer_after_construction(self, compose_worlds):
        facility, weather, grid, jobs = compose_worlds["supercloud-small"]
        simulator = ClusterSimulator(
            Cluster(facility),
            make_scheduler("fifo"),
            SimulationConfig(horizon_h=HORIZON_H),
            weather_hourly_c=weather,
            cooling=CoolingModel(),
            grid=grid,
        )
        observer = simulator.add_observer(RecordingObserver())
        simulator.run([job.clone_pending() for job in jobs])
        assert observer.rounds > 0 and observer.ticks
