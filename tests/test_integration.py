"""Cross-module integration tests built around the GreenDatacenterModel facade."""

import numpy as np
import pytest

from repro import ExperimentConfig, GreenDatacenterModel
from repro.core.levers import OperatingPoint
from repro.core.policies import LoadShiftingPolicy


@pytest.fixture(scope="module")
def model() -> GreenDatacenterModel:
    return GreenDatacenterModel(experiment=ExperimentConfig(seed=0, n_months=24))


class TestFacade:
    def test_scenario_cached(self, model):
        assert model.scenario is model.scenario
        assert model.grid is model.scenario.grid

    def test_monthly_figures_reproduce_paper_shapes(self, model):
        figures = model.monthly_figures()
        assert figures["fig2"].correlation < 0
        assert figures["fig3"].correlation < 0
        assert figures["fig4"].spearman > 0.8
        assert figures["fig5"].anticipation_detected()

    def test_hourly_load_positive(self, model):
        load = model.hourly_facility_load_kwh()
        assert load.min() > 0
        assert load.shape[0] == model.calendar.total_hours

    def test_opportunity_cost_consistent_with_shifting(self, model):
        report = model.opportunity_cost(deferrable_fraction=0.3, window_h=24)
        shifting = model.load_shifting(
            LoadShiftingPolicy(deferrable_fraction=0.3, window_h=24, signal="carbon")
        )
        assert report.environmental_opportunity_cost_kg == pytest.approx(
            shifting.baseline_emissions_kg - shifting.shifted_emissions_kg, rel=1e-9
        )

    def test_load_shifting_saves_emissions(self, model):
        outcome = model.load_shifting()
        assert outcome.emissions_savings_fraction > 0.0
        assert outcome.shifted_energy_mwh == pytest.approx(outcome.baseline_energy_mwh, rel=1e-9)

    def test_deadline_options(self, model):
        outcomes = model.deadline_options(options=("actual", "rolling"))
        assert outcomes["rolling"].total_energy_mwh < outcomes["actual"].total_energy_mwh

    def test_job_trace_generation(self, model):
        jobs = model.generate_job_trace(n_jobs=50, horizon_h=48.0)
        assert len(jobs) == 50
        assert all(j.submit_time_h <= 48.0 for j in jobs)


class TestEndToEndOptimization:
    def test_optimize_operations_small(self):
        from repro.config import FacilityConfig

        model = GreenDatacenterModel(
            experiment=ExperimentConfig(seed=1, n_months=2),
            facility=FacilityConfig(n_nodes=8, gpus_per_node=2),
        )
        jobs = model.generate_job_trace(n_jobs=40, horizon_h=48.0)
        outcome = model.optimize_operations(
            jobs,
            horizon_h=4 * 24.0,
            activity_floor_fraction=0.8,
            points=[
                OperatingPoint(policy_name="backfill"),
                OperatingPoint(policy_name="energy-aware", power_cap_fraction=0.75),
            ],
        )
        assert outcome.best is not None
        assert outcome.best.evaluation.feasible
        # The energy-aware capped point should beat (or match) uncapped backfill
        # on facility energy while staying feasible.
        assert outcome.savings_vs_baseline() >= 0.0


class TestStressIntegration:
    def test_stress_tests_ranked_by_severity(self):
        from repro.config import FacilityConfig

        model = GreenDatacenterModel(
            experiment=ExperimentConfig(seed=2, n_months=12),
            facility=FacilityConfig(n_nodes=32, gpus_per_node=2),
        )
        results = model.stress_tests()
        assert results["severely-adverse"].total_energy_mwh > results["baseline"].total_energy_mwh


class TestTrackerToReportPipeline:
    def test_tracked_training_run_lands_on_leaderboard(self):
        from repro.telemetry import SimulatedNvml
        from repro.tracking import EnergyTracker, ExperimentReport, ReportCollection

        collection = ReportCollection()
        for label, utilization in (("efficient", 0.6), ("hungry", 0.95)):
            nvml = SimulatedNvml.create(4, "V100", seed=0, measurement_noise_fraction=0.0)
            tracker = EnergyTracker(nvml, region="ISO-NE", sampling_period_s=60.0, label=label)
            with tracker:
                for handle in nvml.devices:
                    nvml.set_utilization(handle, utilization)
                tracker.advance(2 * 3600.0)
            collection.add(
                ExperimentReport.from_tracker(
                    tracker.report(), task="imagenet", performance_metric="top1", performance_value=0.76
                )
            )
        ranked = collection.leaderboard(by="performance_per_kwh")
        assert ranked[0].name == "efficient"
        assert collection.total_energy_kwh() > 0
