"""Tests for the discrete-event cluster simulator."""

import numpy as np
import pytest

from repro.config import FacilityConfig
from repro.cluster.cooling import CoolingModel
from repro.cluster.resources import Cluster
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.errors import SimulationError
from repro.scheduler.backfill import BackfillScheduler
from repro.scheduler.carbon_aware import CarbonAwareScheduler
from repro.scheduler.energy_aware import EnergyAwareScheduler
from repro.scheduler.fifo import FifoScheduler
from repro.scheduler.job import Job, JobState


FACILITY = FacilityConfig(n_nodes=2, gpus_per_node=4)


def make_job(job_id: str, n_gpus: int, duration: float, submit: float, **kw) -> Job:
    return Job(job_id=job_id, user_id=kw.pop("user_id", "u"), n_gpus=n_gpus, duration_h=duration,
               submit_time_h=submit, **kw)


def run(jobs, scheduler=None, config=None, **kwargs):
    simulator = ClusterSimulator(
        Cluster(FACILITY), scheduler or BackfillScheduler(), config or SimulationConfig(horizon_h=48.0), **kwargs
    )
    return simulator.run(jobs)


class TestBasicExecution:
    def test_single_job_completes(self):
        result = run([make_job("a", 2, 3.0, 1.0)])
        record = result.job_records[0]
        assert record.completed
        assert record.start_time_h == pytest.approx(1.0)
        assert record.finish_time_h == pytest.approx(4.0)
        assert record.wait_time_h == pytest.approx(0.0)
        assert result.completed_jobs == 1

    def test_all_jobs_complete_when_capacity_allows(self):
        jobs = [make_job(f"j{i}", 1, 2.0, float(i)) for i in range(8)]
        result = run(jobs)
        assert result.completed_jobs == 8
        assert result.delivered_gpu_hours == pytest.approx(16.0)

    def test_queueing_when_cluster_full(self):
        jobs = [make_job("big", 8, 10.0, 0.0), make_job("next", 8, 5.0, 0.0)]
        result = run(jobs)
        records = {r.job_id: r for r in result.job_records}
        assert records["next"].start_time_h == pytest.approx(10.0)
        assert records["next"].wait_time_h == pytest.approx(10.0)

    def test_job_running_past_horizon_not_completed(self):
        result = run([make_job("a", 1, 100.0, 0.0)], config=SimulationConfig(horizon_h=24.0))
        record = result.job_records[0]
        assert not record.completed

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(SimulationError):
            run([make_job("a", 1, 1.0, 0.0), make_job("a", 1, 1.0, 0.0)])

    def test_non_pending_job_rejected(self):
        job = make_job("a", 1, 1.0, 0.0)
        job.state = JobState.RUNNING
        with pytest.raises(SimulationError):
            run([job])


class TestPowerAccounting:
    def test_power_series_recorded_each_tick(self):
        config = SimulationConfig(horizon_h=24.0, tick_h=1.0)
        result = run([make_job("a", 4, 5.0, 0.0)], config=config)
        assert result.tick_times_h.shape[0] == 25
        assert result.it_power_w.shape == result.tick_times_h.shape

    def test_it_power_higher_while_job_runs(self):
        config = SimulationConfig(horizon_h=24.0, tick_h=1.0)
        result = run([make_job("a", 8, 6.0, 2.0, utilization=1.0)], config=config)
        busy = result.it_power_w[(result.tick_times_h >= 2) & (result.tick_times_h < 8)]
        idle = result.it_power_w[result.tick_times_h >= 10]
        assert busy.min() > idle.max()

    def test_energy_totals_consistent(self):
        result = run([make_job("a", 2, 3.0, 0.0)])
        assert result.facility_energy_kwh >= result.it_energy_kwh
        assert result.it_energy_kwh > 0

    def test_pue_is_one_without_cooling(self):
        result = run([make_job("a", 2, 3.0, 0.0)])
        np.testing.assert_allclose(result.pue, 1.0)

    def test_cooling_requires_weather(self):
        with pytest.raises(SimulationError):
            ClusterSimulator(Cluster(FACILITY), FifoScheduler(), cooling=CoolingModel())

    def test_cooling_raises_facility_energy(self, small_weather):
        config = SimulationConfig(horizon_h=48.0)
        plain = run([make_job("a", 4, 5.0, 0.0)], config=config)
        cooled = run(
            [make_job("a", 4, 5.0, 0.0)],
            config=config,
            weather_hourly_c=small_weather,
            cooling=CoolingModel(),
        )
        assert cooled.facility_energy_kwh > plain.facility_energy_kwh
        assert cooled.average_pue > 1.0

    def test_grid_enables_emissions_and_cost(self, small_grid, small_weather):
        result = run(
            [make_job("a", 4, 5.0, 0.0)],
            weather_hourly_c=small_weather,
            cooling=CoolingModel(),
            grid=small_grid,
        )
        assert result.total_emissions_kg > 0
        assert result.total_cost_usd > 0

    def test_no_grid_means_zero_emissions(self):
        result = run([make_job("a", 1, 1.0, 0.0)])
        assert result.total_emissions_kg == 0.0
        assert result.total_cost_usd == 0.0

    def test_peak_power_at_least_idle(self):
        result = run([make_job("a", 1, 1.0, 0.0)])
        idle_power = Cluster(FACILITY).it_power_w()
        assert result.peak_facility_power_w >= idle_power


class TestPowerCapsInSimulation:
    def test_caps_stretch_duration_and_lower_energy(self):
        uncapped = run([make_job("a", 4, 10.0, 0.0, utilization=1.0)], scheduler=BackfillScheduler())
        capped = run(
            [make_job("a", 4, 10.0, 0.0, utilization=1.0)],
            scheduler=EnergyAwareScheduler(),
        )
        rec_uncapped = uncapped.job_records[0]
        rec_capped = capped.job_records[0]
        assert rec_capped.actual_duration_h > rec_uncapped.actual_duration_h
        assert rec_capped.energy_j < rec_uncapped.energy_j
        assert rec_capped.power_cap_w is not None


class TestDeadlinesAndSummary:
    def test_deadline_miss_rate(self):
        jobs = [
            make_job("block", 8, 20.0, 0.0),
            make_job("late", 8, 5.0, 0.0, deadline_h=10.0),
        ]
        result = run(jobs, config=SimulationConfig(horizon_h=72.0))
        assert result.deadline_miss_rate == pytest.approx(1.0)

    def test_summary_keys(self):
        result = run([make_job("a", 1, 1.0, 0.0)])
        summary = result.summary()
        for key in ("facility_energy_kwh", "emissions_kg", "completed_jobs", "mean_wait_h"):
            assert key in summary

    def test_mean_wait_nan_when_nothing_started(self):
        result = run([make_job("a", 1, 1.0, 100.0)], config=SimulationConfig(horizon_h=24.0))
        assert np.isnan(result.mean_wait_h)

    def test_energy_per_gpu_hour(self):
        result = run([make_job("a", 2, 4.0, 0.0)])
        assert result.energy_per_gpu_hour_kwh > 0


class TestCarbonAwareIntegration:
    def test_deferrable_jobs_eventually_run(self, small_grid, small_weather):
        jobs = [
            make_job(f"d{i}", 1, 2.0, 0.0, deferrable=True, max_defer_h=12.0) for i in range(4)
        ]
        result = run(
            jobs,
            scheduler=CarbonAwareScheduler(),
            config=SimulationConfig(horizon_h=48.0),
            weather_hourly_c=small_weather,
            cooling=CoolingModel(),
            grid=small_grid,
        )
        assert result.completed_jobs == 4
        starts = [r.start_time_h for r in result.job_records]
        assert all(s is not None and s <= 12.0 + 2.0 for s in starts)

    def test_policies_deliver_identical_work(self, small_grid, small_weather, job_trace):
        """Different policies must deliver the same completed GPU-hours on a
        trace that fits comfortably inside the horizon (the activity side of Eq. 1)."""
        results = []
        for scheduler in (BackfillScheduler(), EnergyAwareScheduler(), CarbonAwareScheduler()):
            sim = ClusterSimulator(
                Cluster(FacilityConfig(n_nodes=16, gpus_per_node=2)),
                scheduler,
                SimulationConfig(horizon_h=10 * 24.0),
                weather_hourly_c=small_weather,
                cooling=CoolingModel(),
                grid=small_grid,
            )
            results.append(sim.run([j.clone_pending() for j in job_trace]))
        delivered = {round(r.delivered_gpu_hours, 3) for r in results}
        assert len(delivered) == 1
