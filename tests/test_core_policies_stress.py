"""Tests for load shifting, opportunity cost, deadline restructuring, and stress tests."""

import numpy as np
import pytest

from repro.core.opportunity_cost import opportunity_cost_of_profile
from repro.core.policies import (
    LoadShiftingPolicy,
    evaluate_deadline_restructuring,
    evaluate_load_shifting,
)
from repro.core.stress import StressTestHarness
from repro.climate.stress_scenarios import STANDARD_STRESS_SCENARIOS, get_stress_scenario
from repro.errors import OptimizationError
from repro.workloads.supercloud import SuperCloudTraceConfig
from repro.config import FacilityConfig


@pytest.fixture(scope="module")
def hourly_load(year_grid):
    """A synthetic facility load with a diurnal swing, aligned with the year grid."""
    hours = year_grid.hours
    return 300.0 + 80.0 * np.cos(2 * np.pi * (hours % 24 - 15) / 24.0)


class TestLoadShifting:
    def test_energy_conserved(self, hourly_load, year_grid):
        policy = LoadShiftingPolicy(deferrable_fraction=0.3, window_h=24, signal="carbon")
        outcome = evaluate_load_shifting(facility_load_kwh=hourly_load, grid=year_grid, policy=policy)
        assert outcome.shifted_energy_mwh == pytest.approx(outcome.baseline_energy_mwh, rel=1e-9)

    def test_carbon_signal_reduces_emissions(self, hourly_load, year_grid):
        policy = LoadShiftingPolicy(deferrable_fraction=0.3, window_h=24, signal="carbon")
        outcome = evaluate_load_shifting(facility_load_kwh=hourly_load, grid=year_grid, policy=policy)
        assert outcome.emissions_savings_fraction > 0.0

    def test_price_signal_reduces_cost(self, hourly_load, year_grid):
        policy = LoadShiftingPolicy(deferrable_fraction=0.3, window_h=24, signal="price")
        outcome = evaluate_load_shifting(facility_load_kwh=hourly_load, grid=year_grid, policy=policy)
        assert outcome.cost_savings_fraction > 0.0

    def test_more_deferrable_load_saves_more(self, hourly_load, year_grid):
        small = evaluate_load_shifting(
            facility_load_kwh=hourly_load,
            grid=year_grid,
            policy=LoadShiftingPolicy(deferrable_fraction=0.1, signal="carbon"),
        )
        large = evaluate_load_shifting(
            facility_load_kwh=hourly_load,
            grid=year_grid,
            policy=LoadShiftingPolicy(deferrable_fraction=0.5, signal="carbon"),
        )
        assert large.emissions_savings_fraction >= small.emissions_savings_fraction

    def test_zero_deferrable_is_noop(self, hourly_load, year_grid):
        outcome = evaluate_load_shifting(
            facility_load_kwh=hourly_load,
            grid=year_grid,
            policy=LoadShiftingPolicy(deferrable_fraction=0.0),
        )
        assert outcome.emissions_savings_fraction == pytest.approx(0.0, abs=1e-12)
        assert outcome.cost_savings_fraction == pytest.approx(0.0, abs=1e-12)

    def test_summary_keys(self, hourly_load, year_grid):
        outcome = evaluate_load_shifting(
            facility_load_kwh=hourly_load, grid=year_grid, policy=LoadShiftingPolicy()
        )
        assert "emissions_savings_pct" in outcome.summary()

    def test_shape_mismatch_rejected(self, year_grid):
        with pytest.raises(OptimizationError):
            evaluate_load_shifting(
                facility_load_kwh=np.ones(10), grid=year_grid, policy=LoadShiftingPolicy()
            )

    def test_policy_validation(self):
        with pytest.raises(OptimizationError):
            LoadShiftingPolicy(deferrable_fraction=1.5)
        with pytest.raises(OptimizationError):
            LoadShiftingPolicy(window_h=0)
        with pytest.raises(OptimizationError):
            LoadShiftingPolicy(signal="vibes")


class TestOpportunityCost:
    def test_report_fields(self, hourly_load, year_grid):
        report = opportunity_cost_of_profile(hourly_load, year_grid, deferrable_fraction=0.3)
        assert report.environmental_opportunity_cost_kg >= 0.0
        assert report.financial_opportunity_cost_usd >= 0.0
        assert 0.0 <= report.environmental_opportunity_fraction < 1.0
        assert 0.0 <= report.financial_opportunity_fraction < 1.0
        assert "avoidable_emissions_pct" in report.summary()

    def test_more_flexibility_more_opportunity(self, hourly_load, year_grid):
        rigid = opportunity_cost_of_profile(hourly_load, year_grid, deferrable_fraction=0.1)
        flexible = opportunity_cost_of_profile(hourly_load, year_grid, deferrable_fraction=0.5)
        assert (
            flexible.environmental_opportunity_cost_kg >= rigid.environmental_opportunity_cost_kg
        )

    def test_empty_profile_rejected(self, year_grid):
        with pytest.raises(OptimizationError):
            opportunity_cost_of_profile(np.array([]), year_grid)


class TestDeadlineRestructuring:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return evaluate_deadline_restructuring(seed=0, n_months=24)

    def test_all_options_evaluated(self, outcomes):
        assert set(outcomes) == {"actual", "uniform", "winter", "rolling"}

    def test_rolling_removes_deadline_energy(self, outcomes):
        """Without deadlines there is no anticipation surge, so total energy drops."""
        assert outcomes["rolling"].total_energy_mwh < outcomes["actual"].total_energy_mwh

    def test_winter_calendar_reduces_summer_share(self, outcomes):
        assert outcomes["winter"].summer_energy_share < outcomes["actual"].summer_energy_share

    def test_restructuring_reduces_peak_or_emissions(self, outcomes):
        """At least one of the paper's options improves on the status quo on peak
        power or emissions (the claim is that the calendar is a real lever)."""
        actual = outcomes["actual"]
        improvements = [
            outcomes[o].peak_monthly_power_kw < actual.peak_monthly_power_kw
            or outcomes[o].total_emissions_t < actual.total_emissions_t
            for o in ("uniform", "winter", "rolling")
        ]
        assert any(improvements)

    def test_summary_records(self, outcomes):
        record = outcomes["actual"].summary()
        assert record["option"] == "actual"
        assert record["energy_mwh"] > 0


class TestStressHarness:
    @pytest.fixture(scope="class")
    def harness(self):
        facility = FacilityConfig(n_nodes=64, gpus_per_node=2)
        return StressTestHarness(
            n_months=12, seed=0, trace_config=SuperCloudTraceConfig(facility=facility)
        )

    @pytest.fixture(scope="class")
    def battery(self, harness):
        return harness.run_battery(STANDARD_STRESS_SCENARIOS)

    def test_all_scenarios_run(self, battery):
        assert set(battery) == {s.name for s in STANDARD_STRESS_SCENARIOS}

    def test_stress_scenarios_degrade_energy(self, battery):
        baseline = battery["baseline"]
        severe = battery["severely-adverse"]
        assert severe.total_energy_mwh > baseline.total_energy_mwh
        assert severe.cooling_energy_mwh > baseline.cooling_energy_mwh
        assert severe.total_cost_kusd > baseline.total_cost_kusd
        assert severe.mean_pue > baseline.mean_pue

    def test_heat_scenarios_raise_max_temperature(self, battery):
        assert battery["adverse-heat"].max_outdoor_temperature_c > battery["baseline"].max_outdoor_temperature_c

    def test_degradation_table(self, battery):
        table = StressTestHarness.degradation_table(battery)
        rows = {row["scenario"]: row for row in table}
        assert rows["baseline"]["energy_increase_pct"] == pytest.approx(0.0, abs=1e-9)
        assert rows["severely-adverse"]["energy_increase_pct"] > 0.0

    def test_degradation_requires_baseline(self, battery):
        partial = {k: v for k, v in battery.items() if k != "baseline"}
        with pytest.raises(Exception):
            StressTestHarness.degradation_table(partial)

    def test_single_scenario(self, harness):
        result = harness.run_scenario(get_stress_scenario("winter-gas-crisis"))
        assert result.total_cost_kusd > 0
        assert result.severity == 2
