"""Tests for the multi-site fleet subsystem (repro.fleet).

Covers, per the subsystem's acceptance bar:

* **Conservation** — every generated job is dispatched exactly once, and
  fleet totals equal the sum of the per-site totals bit-for-bit.
* **Reproducibility** — seeded fleet runs are hash-pinned per router.
* **Degenerate parity** — a one-site fleet reproduces the single-site
  :class:`~repro.experiments.ExperimentSession` results bit-identically.
* The router grammar/registry, the stepping simulator API the lockstep loop
  is built on, the ``fleet`` experiment, campaign sweeps over ``router``,
  and the CLI surfaces.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.cli import main
from repro.cluster.cooling import CoolingModel
from repro.cluster.resources import Cluster
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.core.levers import make_scheduler
from repro.errors import ConfigurationError, FleetError, SimulationError
from repro.experiments import CampaignSpec, ExperimentSession, get_scenario, run_campaign
from repro.experiments.campaign import split_value_list
from repro.fleet import (
    CompositeRouter,
    FleetSimulator,
    FleetSpec,
    REGION_GRIDS,
    RouterDefinition,
    SiteScorer,
    SiteSnapshot,
    get_fleet,
    make_router,
    parse_router,
    register_router,
    resolve_member,
    router_names,
)
from repro.scheduler.job import Job, JobState

SEED = 7
N_MONTHS = 2
HORIZON_H = 72.0
N_JOBS = 120

#: Routers exercised by the seeded pinned world (incl. a binding filter).
PINNED_ROUTERS = (
    "round-robin",
    "least-queued",
    "carbon-min",
    "price-min",
    "renewable-max",
    "carbon-min+free-gpus(min=48)",
)

#: sha256 over the repr of the assignment table plus every site's job-record
#: tuples, captured from the run that introduced the subsystem.  Matching
#: hashes mean bit-identical routing decisions *and* per-site outcomes.
PINNED_FLEET_HASHES = {
    "round-robin": "12af48094a7c53997bae1d4c77c087fb2cfbc82151a76e171ff2201f7edb97dd",
    "least-queued": "b456ad124832b0dce2f8eccc9106a8b09175ada1ca5e27021f71c2795169ac47",
    "carbon-min": "091284e4e854228e5715e3a6ce68657dd2cb629a7f25f37d0a30fb12f7593e49",
    "price-min": "c0a20b9ef1a9c5797b4e8acbd7c056868f29bede710bada16aefd6771d1c0deb",
    "renewable-max": "c8d1d2e433050b2156fc29e9f28f1341a50df91cf39ff490bb10816d9351bb8c",
    "carbon-min+free-gpus(min=48)": (
        "da2f670af5709a196eaf2e06abdbe9d697d187e6d8a7f14ed90b8741200f2277"
    ),
}


def _fleet_fingerprint(result) -> str:
    payload = [
        (a.job_id, a.site_index, a.site_name, a.submit_time_h, a.dispatch_hour)
        for a in result.assignments
    ]
    for site_result in result.site_results:
        payload.extend(
            (r.job_id, r.start_time_h, r.finish_time_h, r.energy_j, r.power_cap_w, r.completed)
            for r in site_result.job_records
        )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


@pytest.fixture(scope="module")
def tri_world():
    """The seeded tri-site world plus one fleet run per pinned router."""
    fleet = get_fleet("tri-site-small").with_member_overrides(n_months=N_MONTHS, seed=SEED)
    session = ExperimentSession(fleet.members[0])
    trace = session.job_trace(n_jobs=N_JOBS, horizon_h=HORIZON_H, spec=fleet.members[0])
    results = {
        router: FleetSimulator(
            fleet, router=router, horizon_h=HORIZON_H, session=session
        ).run(trace)
        for router in PINNED_ROUTERS
    }
    return fleet, session, trace, results


# ---------------------------------------------------------------------------
# Router grammar and registry
# ---------------------------------------------------------------------------


def _snapshot(index, *, queue=0, free=64, total=64, carbon=None, price=None,
              renewable=None, name=None):
    return SiteSnapshot(
        index=index,
        name=name or f"site-{index}",
        queue_length=queue,
        running_jobs=0,
        free_gpus=free,
        total_gpus=total,
        it_power_w=0.0,
        carbon_intensity_g_per_kwh=carbon,
        price_per_mwh=price,
        renewable_share=renewable,
    )


def _job(job_id="j0", n_gpus=1, submit=0.0):
    return Job(job_id=job_id, user_id="u", n_gpus=n_gpus, duration_h=1.0, submit_time_h=submit)


class TestRouterGrammar:
    def test_round_trip_canonical_spelling(self):
        router = make_router("carbon-min+queue-cap(max=50)")
        assert router.name == "carbon-min+queue-cap(max=50)"
        assert make_router(router.name).name == router.name

    def test_filters_only_defaults_to_round_robin(self):
        router = make_router("queue-cap(max=3)")
        assert isinstance(router, CompositeRouter)
        assert router.scorer.name == "round-robin"

    def test_unknown_token_raises(self):
        with pytest.raises(FleetError, match="unknown router token"):
            make_router("warp-speed")

    def test_two_scorers_raise(self):
        with pytest.raises(FleetError, match="at most one"):
            parse_router("carbon-min+price-min")

    def test_unbalanced_parens_raise(self):
        with pytest.raises(FleetError, match="unbalanced"):
            make_router("queue-cap(max=3")

    def test_unknown_argument_raises(self):
        with pytest.raises(FleetError, match="unknown argument"):
            make_router("queue-cap(maximum=3)")

    def test_missing_required_argument_raises(self):
        with pytest.raises(FleetError, match="missing required argument"):
            make_router("carbon-cap")

    def test_register_router_duplicate_raises(self):
        with pytest.raises(FleetError, match="already registered"):
            register_router(
                RouterDefinition(name="round-robin", kind="scorer", help="dup")
            )

    def test_register_router_open_registry(self):
        name = "always-first"
        if name not in router_names():
            register_router(
                RouterDefinition(
                    name=name,
                    kind="scorer",
                    help="test stub",
                    build=lambda params: _FirstScorer(),
                )
            )
        assert name in router_names()
        router = make_router(name)
        assert router.select(_job(), [_snapshot(0), _snapshot(1)], 0.0) == 0


class _FirstScorer:
    name = "always-first"

    def begin_fleet(self, n_sites):
        pass

    def choose(self, job, candidates, now_h):
        return candidates[0]


class _LeastDispatchedScorer(SiteScorer):
    """Balance by cumulative dispatches (the SiteSnapshot.dispatched hook)."""

    name = "least-dispatched"

    def score(self, job, site, now_h):
        return float(site.dispatched)


class TestRouterSemantics:
    def test_round_robin_cycles_sites(self):
        router = make_router("round-robin")
        router.begin_fleet(3)
        sites = [_snapshot(i) for i in range(3)]
        picks = [router.select(_job(f"j{i}"), sites, 0.0) for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_skips_infeasible_without_losing_turn(self):
        router = make_router("round-robin")
        router.begin_fleet(3)
        sites = [_snapshot(0, total=2), _snapshot(1), _snapshot(2)]
        picks = [router.select(_job(f"j{i}", n_gpus=4), sites, 0.0) for i in range(4)]
        assert picks == [1, 2, 1, 2]

    def test_least_queued_prefers_short_queue_then_lowest_index(self):
        router = make_router("least-queued")
        sites = [_snapshot(0, queue=5), _snapshot(1, queue=2), _snapshot(2, queue=2)]
        assert router.select(_job(), sites, 0.0) == 1

    def test_carbon_min_and_price_min_and_renewable_max(self):
        sites = [
            _snapshot(0, carbon=400.0, price=50.0, renewable=0.05),
            _snapshot(1, carbon=100.0, price=80.0, renewable=0.30),
            _snapshot(2, carbon=250.0, price=20.0, renewable=0.10),
        ]
        assert make_router("carbon-min").select(_job(), sites, 0.0) == 1
        assert make_router("price-min").select(_job(), sites, 0.0) == 2
        assert make_router("renewable-max").select(_job(), sites, 0.0) == 1

    def test_missing_signal_sites_sort_last(self):
        sites = [_snapshot(0, carbon=None), _snapshot(1, carbon=300.0)]
        assert make_router("carbon-min").select(_job(), sites, 0.0) == 1

    def test_filters_prune_then_scorer_picks(self):
        router = make_router("carbon-min+queue-cap(max=2)")
        sites = [
            _snapshot(0, carbon=100.0, queue=10),  # cleanest but over-queued
            _snapshot(1, carbon=200.0, queue=1),
            _snapshot(2, carbon=300.0, queue=0),
        ]
        assert router.select(_job(), sites, 0.0) == 1

    def test_overconstrained_filters_are_waived(self):
        router = make_router("carbon-min+queue-cap(max=0)")
        sites = [_snapshot(0, carbon=200.0, queue=5), _snapshot(1, carbon=100.0, queue=9)]
        assert router.select(_job(), sites, 0.0) == 1

    def test_job_too_large_for_every_member_raises(self):
        router = make_router("round-robin")
        router.begin_fleet(2)
        sites = [_snapshot(0, total=4), _snapshot(1, total=8)]
        with pytest.raises(FleetError, match="largest fleet member has 8"):
            router.select(_job(n_gpus=16), sites, 0.0)

    def test_infeasible_sites_never_picked_even_by_filters(self):
        router = make_router("least-queued")
        sites = [_snapshot(0, queue=0, total=2), _snapshot(1, queue=9, total=64)]
        assert router.select(_job(n_gpus=4), sites, 0.0) == 1


# ---------------------------------------------------------------------------
# Fleet spec and registry
# ---------------------------------------------------------------------------


class TestFleetSpec:
    def test_member_shorthand_relocates_and_adopts_region_grid(self):
        member = resolve_member("supercloud-small@phoenix-az")
        assert member.name == "supercloud-small@phoenix-az"
        assert member.site.name == "phoenix-az"
        assert member.grid == REGION_GRIDS["AZPS"]
        assert member.facility == get_scenario("supercloud-small").facility

    def test_member_plain_name_keeps_home_grid(self):
        member = resolve_member("supercloud-small")
        assert member == get_scenario("supercloud-small")

    def test_duplicate_member_names_raise(self):
        with pytest.raises(ConfigurationError, match="unique"):
            FleetSpec(name="dup", members=("supercloud-small", "supercloud-small"))

    def test_empty_fleet_raises(self):
        with pytest.raises(ConfigurationError, match="at least one member"):
            FleetSpec(name="empty", members=())

    def test_bad_default_router_fails_registration(self):
        with pytest.raises(FleetError):
            FleetSpec(name="bad", members=("supercloud-small",), router="warp-speed")

    def test_unknown_fleet_raises(self):
        with pytest.raises(ConfigurationError, match="unknown fleet"):
            get_fleet("atlantis")

    def test_with_member_overrides_applies_to_every_member(self):
        fleet = get_fleet("tri-site-small").with_member_overrides(n_months=3, seed=11)
        assert all(m.n_months == 3 and m.seed == 11 for m in fleet.members)
        assert fleet.member_names == get_fleet("tri-site-small").member_names

    def test_to_dict_is_json_ready(self):
        payload = json.dumps(get_fleet("tri-site-small").to_dict())
        assert "supercloud-small@phoenix-az" in payload


# ---------------------------------------------------------------------------
# Conservation, pins, and router distinctness on the seeded tri-site world
# ---------------------------------------------------------------------------


class TestFleetConservation:
    def test_every_job_dispatched_exactly_once(self, tri_world):
        _, _, trace, results = tri_world
        trace_ids = sorted(job.job_id for job in trace)
        for result in results.values():
            assert sorted(a.job_id for a in result.assignments) == trace_ids
            site_ids = sorted(
                record.job_id
                for site_result in result.site_results
                for record in site_result.job_records
            )
            assert site_ids == trace_ids

    def test_input_trace_left_pristine(self, tri_world):
        _, _, trace, _ = tri_world
        assert all(job.state is JobState.PENDING for job in trace)

    def test_fleet_totals_equal_sum_of_sites_bit_for_bit(self, tri_world):
        _, _, _, results = tri_world
        for result in results.values():
            assert result.it_energy_kwh == sum(
                p.it_energy_kwh for p in result.site_power
            )
            assert result.facility_energy_kwh == sum(
                p.facility_energy_kwh for p in result.site_power
            )
            assert result.total_emissions_kg == sum(
                r.total_emissions_kg for r in result.site_results
            )
            assert result.total_cost_usd == sum(
                r.total_cost_usd for r in result.site_results
            )
            assert result.delivered_gpu_hours == sum(
                r.delivered_gpu_hours for r in result.site_results
            )
            assert result.completed_jobs == sum(
                r.completed_jobs for r in result.site_results
            )

    def test_assignment_table_matches_site_record_locations(self, tri_world):
        _, _, _, results = tri_world
        for result in results.values():
            by_site = {
                name: {r.job_id for r in site_result.job_records}
                for name, site_result in zip(result.site_names, result.site_results)
            }
            for assignment in result.assignments:
                assert assignment.job_id in by_site[assignment.site_name]

    @pytest.mark.parametrize("router", PINNED_ROUTERS)
    def test_seeded_run_matches_pinned_hash(self, tri_world, router):
        _, _, _, results = tri_world
        assert _fleet_fingerprint(results[router]) == PINNED_FLEET_HASHES[router]

    def test_routers_make_distinct_decisions(self, tri_world):
        _, _, _, results = tri_world
        assignments = {
            router: tuple((a.job_id, a.site_index) for a in result.assignments)
            for router, result in results.items()
        }
        core = ["round-robin", "least-queued", "carbon-min", "price-min", "renewable-max"]
        seen = set(assignments[router] for router in core)
        assert len(seen) == len(core), "every core router must route differently"

    def test_custom_router_balances_on_dispatched_counts(self, tri_world):
        """The snapshot's cumulative `dispatched` field drives balance routers."""
        fleet, session, trace, _ = tri_world
        if "least-dispatched" not in router_names():
            register_router(
                RouterDefinition(
                    name="least-dispatched",
                    kind="scorer",
                    help="balance by cumulative dispatch count",
                    build=lambda params: _LeastDispatchedScorer(),
                )
            )
        result = FleetSimulator(
            fleet, router="least-dispatched", horizon_h=HORIZON_H, session=session
        ).run(trace)
        counts = list(result.dispatch_counts().values())
        assert max(counts) - min(counts) <= 1, counts

    def test_dispatch_counts_sum_to_trace(self, tri_world):
        _, _, trace, results = tri_world
        for result in results.values():
            assert sum(result.dispatch_counts().values()) == len(trace)

    def test_site_power_summary_consistency(self, tri_world):
        _, _, _, results = tri_world
        result = results["round-robin"]
        for site_result, power in zip(result.site_results, result.site_power):
            np.testing.assert_array_equal(power.it_power_w, site_result.it_power_w)
            np.testing.assert_array_equal(
                power.facility_power_w, site_result.facility_power_w
            )
            np.testing.assert_allclose(
                power.cooling_power_w,
                site_result.facility_power_w - site_result.it_power_w,
            )
            assert power.it_energy_kwh == site_result.it_energy_kwh
            assert power.facility_energy_kwh == site_result.facility_energy_kwh


# ---------------------------------------------------------------------------
# Degenerate one-site fleet == single-site session, bit-identically
# ---------------------------------------------------------------------------


class TestDegenerateFleetParity:
    @pytest.fixture(scope="class")
    def solo_world(self):
        spec = get_scenario("supercloud-small").replace(n_months=N_MONTHS, seed=SEED)
        session = ExperimentSession(spec)
        single = session.simulate_policy("backfill", n_jobs=80, horizon_h=HORIZON_H)
        fleet = FleetSpec(name="solo-test", members=(spec,))
        fleet_result = FleetSimulator(
            fleet, policy="backfill", horizon_h=HORIZON_H, session=session
        ).run(n_jobs=80)
        return single, fleet_result

    def test_job_records_bit_identical(self, solo_world):
        single, fleet_result = solo_world
        (site_result,) = fleet_result.site_results
        assert site_result.job_records == single.job_records

    def test_power_series_bit_identical(self, solo_world):
        single, fleet_result = solo_world
        (site_result,) = fleet_result.site_results
        np.testing.assert_array_equal(site_result.it_power_w, single.it_power_w)
        np.testing.assert_array_equal(
            site_result.facility_power_w, single.facility_power_w
        )
        np.testing.assert_array_equal(site_result.pue, single.pue)

    def test_totals_bit_identical(self, solo_world):
        single, fleet_result = solo_world
        assert fleet_result.it_energy_kwh == single.it_energy_kwh
        assert fleet_result.facility_energy_kwh == single.facility_energy_kwh
        assert fleet_result.total_emissions_kg == single.total_emissions_kg
        assert fleet_result.total_cost_usd == single.total_cost_usd
        assert fleet_result.delivered_gpu_hours == single.delivered_gpu_hours
        assert fleet_result.mean_wait_h == single.mean_wait_h

    def test_registered_solo_fleet_has_one_member(self):
        assert get_fleet("solo-small").n_sites == 1


# ---------------------------------------------------------------------------
# The stepping simulator API underneath the lockstep loop
# ---------------------------------------------------------------------------


class TestSteppingApi:
    @pytest.fixture(scope="class")
    def stepping_world(self):
        spec = get_scenario("supercloud-small").replace(n_months=1, seed=3)
        session = ExperimentSession(spec)
        scenario = session.scenario()
        trace = session.job_trace(n_jobs=60, horizon_h=48.0)
        return spec, scenario, trace

    def _simulator(self, spec, scenario, horizon_h=48.0):
        return ClusterSimulator(
            Cluster(spec.facility, gpu_model=spec.workload.gpu_model),
            make_scheduler("backfill"),
            SimulationConfig(horizon_h=horizon_h),
            weather_hourly_c=scenario.weather_hourly_c,
            cooling=CoolingModel(),
            grid=scenario.grid,
        )

    def test_hourly_stepping_equals_monolithic_run(self, stepping_world):
        spec, scenario, trace = stepping_world
        monolithic = self._simulator(spec, scenario).run(
            [job.clone_pending() for job in trace]
        )

        stepped_sim = self._simulator(spec, scenario)
        stepped_sim.begin()
        jobs = sorted((job.clone_pending() for job in trace), key=lambda j: j.submit_time_h)
        cursor = 0
        for hour in range(48):
            while cursor < len(jobs) and jobs[cursor].submit_time_h < hour + 1:
                stepped_sim.submit(jobs[cursor])
                cursor += 1
            stepped_sim.advance(hour + 1)
        for job in jobs[cursor:]:
            stepped_sim.submit(job)
        stepped = stepped_sim.finalize()

        assert stepped.job_records == monolithic.job_records
        np.testing.assert_array_equal(stepped.it_power_w, monolithic.it_power_w)

    def test_lifecycle_misuse_raises(self, stepping_world):
        spec, scenario, _ = stepping_world
        simulator = self._simulator(spec, scenario)
        with pytest.raises(SimulationError, match="before begin"):
            simulator.advance(1.0)
        with pytest.raises(SimulationError, match="before begin"):
            simulator.submit(_job())
        with pytest.raises(SimulationError, match="before begin"):
            simulator.finalize()
        simulator.begin()
        with pytest.raises(SimulationError, match="begin\\(\\) called twice"):
            simulator.begin()
        simulator.finalize()
        with pytest.raises(SimulationError, match="finalize\\(\\) called twice"):
            simulator.finalize()
        with pytest.raises(SimulationError, match="after finalize"):
            simulator.submit(_job())

    def test_mid_run_site_power_summary_tracks_progress(self, stepping_world):
        spec, scenario, trace = stepping_world
        simulator = self._simulator(spec, scenario)
        simulator.begin([job.clone_pending() for job in trace])
        simulator.advance(10.0)
        partial = simulator.site_power_summary()
        assert partial.tick_times_h.size == 10  # ticks 0..9; tick 10 not drained yet
        result = simulator.finalize()
        full = simulator.site_power_summary()
        assert full.tick_times_h.size == result.tick_times_h.size
        np.testing.assert_array_equal(
            full.facility_power_w, result.facility_power_w
        )


# ---------------------------------------------------------------------------
# The fleet experiment, campaign sweeps, and the CLI
# ---------------------------------------------------------------------------


class TestFleetExperiment:
    @pytest.fixture(scope="class")
    def session(self):
        return ExperimentSession("default", n_months=N_MONTHS, seed=SEED)

    def test_single_router_result_shape(self, session):
        result = session.run("fleet", jobs=60, horizon_days=2.0)
        assert result.name == "fleet"
        assert result.scalars["n_sites"] == 3
        assert result.scalars["router"] == "round-robin"
        # One fleet row plus one row per site.
        assert len(result.rows) == 4
        assert result.rows[0]["site"] == "(fleet)"
        site_sum = sum(row["facility_energy_kwh"] for row in result.rows[1:])
        assert result.rows[0]["facility_energy_kwh"] == pytest.approx(site_sum, rel=0, abs=0)

    def test_multi_router_comparison_in_one_run(self, session):
        result = session.run(
            "fleet", router="round-robin,carbon-min", jobs=60, horizon_days=2.0
        )
        assert result.scalars["n_routers"] == 2
        routers = {row["router"] for row in result.rows}
        assert routers == {"round-robin", "carbon-min"}
        assert len(result.rows) == 8
        assert result.scalars["greenest_router"] in routers

    def test_invalid_router_is_a_configuration_error(self, session):
        with pytest.raises(ConfigurationError, match="router catalogue"):
            session.run("fleet", router="warp-speed", jobs=10, horizon_days=1.0)

    def test_unknown_fleet_is_a_configuration_error(self, session):
        with pytest.raises(ConfigurationError, match="unknown fleet"):
            session.run("fleet", fleet="atlantis", jobs=10, horizon_days=1.0)

    def test_campaign_sweeps_router_as_a_grid_lever(self):
        campaign = CampaignSpec(
            experiments=("fleet",),
            base=get_scenario("default").replace(n_months=N_MONTHS, seed=SEED),
            param_grid={
                "router": ["round-robin", "carbon-min"],
                "jobs": [60],
                "horizon_days": [2.0],
            },
        )
        result = run_campaign(campaign)
        rows = result.rows
        assert len(rows) == 2
        assert {row["router"] for row in rows} == {"round-robin", "carbon-min"}
        energies = {row["facility_energy_kwh"] for row in rows}
        emissions = {row["emissions_kg"] for row in rows}
        assert len(energies) == 2 and len(emissions) == 2, "routers must differ"


class TestFleetCli:
    def test_fleet_subcommand_json(self, capsys):
        exit_code = main(
            [
                "--months",
                str(N_MONTHS),
                "--seed",
                str(SEED),
                "fleet",
                "--jobs",
                "40",
                "--horizon-days",
                "2.0",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fleet"
        assert payload["scalars"]["n_sites"] == 3
        assert payload["scalars"]["facility_energy_kwh"] > 0

    def test_fleet_subcommand_multi_router_text(self, capsys):
        exit_code = main(
            [
                "--months",
                str(N_MONTHS),
                "fleet",
                "--router",
                "round-robin,carbon-min+queue-cap(max=50)",
                "--jobs",
                "40",
                "--horizon-days",
                "2.0",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "carbon-min+queue-cap(max=50)" in out

    def test_sweep_router_grid_end_to_end(self, capsys):
        exit_code = main(
            [
                "--months",
                str(N_MONTHS),
                "sweep",
                "--experiments",
                "fleet",
                "--grid",
                "router=round-robin,carbon-min",
                "--grid",
                "jobs=40",
                "--grid",
                "horizon_days=2.0",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_points"] == 2
        routers = {row["router"] for row in payload["rows"]}
        assert routers == {"round-robin", "carbon-min"}

    def test_bad_router_spec_is_a_clean_cli_error(self, capsys):
        exit_code = main(
            ["--months", str(N_MONTHS), "fleet", "--router", "warp-speed", "--jobs", "10"]
        )
        assert exit_code == 1
        assert "greenhpc: error" in capsys.readouterr().err

    def test_policies_listing_includes_routers(self, capsys):
        assert main(["policies", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {row["router"] for row in payload["routers"]}
        assert {"round-robin", "carbon-min", "queue-cap"} <= names


class TestSplitValueList:
    def test_paren_aware_split_shared_helper(self):
        values = split_value_list("round-robin,carbon-min+queue-cap(max=50)")
        assert values == ("round-robin", "carbon-min+queue-cap(max=50)")

    def test_empty_list_raises(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            split_value_list("  , ", "routers")

    def test_unbalanced_parens_raise(self):
        with pytest.raises(ConfigurationError, match="routers"):
            split_value_list("queue-cap(max=3", "routers")
